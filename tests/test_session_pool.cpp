// SessionPool / InferenceSession (nn/runtime/session_pool.h): concurrent
// submitters against N pre-compiled sessions must get results bit-identical
// to a lone model, exceptions must travel through the future, and the
// accounting (completed / per-session counts) must add up under stress.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "nn/compiled_model.h"
#include "nn/executor.h"
#include "nn/rng.h"
#include "nn/runtime/session_pool.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

TEST(SessionPool, ServesQuantModelBitExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 1)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  // One weight conversion shared by every session in the pool.
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const nn::CompiledQuantModel reference(g, cfg, nn::ops::KernelTier::Fast,
                                         params);

  nn::SessionPool<nn::CompiledQuantModel> pool(3, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, cfg, nn::ops::KernelTier::Fast, params);
  });
  EXPECT_EQ(pool.num_sessions(), 3);

  std::vector<nn::Tensor> inputs;
  std::vector<nn::QTensor> expected;
  for (std::uint64_t seed = 2; seed < 8; ++seed) {
    inputs.push_back(random_input(g.shape(0), seed));
    expected.push_back(reference.run(inputs.back()));
  }
  std::vector<std::future<nn::QTensor>> futures;
  for (const nn::Tensor& in : inputs) futures.push_back(pool.submit(in));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_q_identical(futures[i].get(), expected[i]);
  }
  EXPECT_EQ(pool.completed(), futures.size());
}

TEST(SessionPool, StressConcurrentSubmitters) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 10)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const nn::CompiledQuantModel reference(g, cfg, nn::ops::KernelTier::Fast,
                                         params);

  // Two distinct inputs with known outputs; submitters interleave them.
  const nn::Tensor in_a = random_input(g.shape(0), 11);
  const nn::Tensor in_b = random_input(g.shape(0), 12);
  const nn::QTensor out_a = reference.run(in_a);
  const nn::QTensor out_b = reference.run(in_b);

  constexpr int kSessions = 4;
  constexpr int kSubmitters = 6;
  constexpr int kPerSubmitter = 8;
  nn::SessionPool<nn::CompiledQuantModel> pool(kSessions, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, cfg, nn::ops::KernelTier::Fast, params);
  });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        const bool use_a = (t + i) % 2 == 0;
        const nn::QTensor got = pool.run(use_a ? in_a : in_b);
        const nn::QTensor& want = use_a ? out_a : out_b;
        if (!(got.shape() == want.shape()) ||
            !std::equal(got.data().begin(), got.data().end(),
                        want.data().begin())) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pool.completed(),
            static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
  EXPECT_EQ(pool.pending(), 0u);
  // Every request landed on some session, none on two.
  std::uint64_t total = 0;
  for (const std::uint64_t n : pool.per_session_requests()) total += n;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kSubmitters * kPerSubmitter));
}

TEST(SessionPool, PropagatesModelExceptionsThroughFuture) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  nn::SessionPool<nn::CompiledModel> pool(2, [&] {
    return std::make_unique<nn::CompiledModel>(g);
  });
  // Wrong input shape: the model throws inside the serving thread and the
  // exception must surface at future.get().
  auto bad = pool.submit(random_input({4, 4, 3}, 13));
  EXPECT_THROW(bad.get(), std::invalid_argument);
  // The pool stays serviceable afterwards.
  auto good = pool.submit(random_input(g.shape(0), 14));
  EXPECT_EQ(good.get().shape(), g.shape(g.output()));
  EXPECT_EQ(pool.completed(), 1u);
}

TEST(SessionPool, ServesPatchModels) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel reference(g, plan);
  const nn::Tensor in = random_input(g.shape(0), 15);
  const nn::Tensor expect = reference.run(in);

  nn::SessionPool<patch::CompiledPatchModel> pool(2, [&] {
    return std::make_unique<patch::CompiledPatchModel>(g, plan);
  });
  std::vector<std::future<nn::Tensor>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(pool.submit(in));
  for (auto& f : futures) {
    const nn::Tensor got = f.get();
    ASSERT_EQ(got.shape(), expect.shape());
    for (std::size_t i = 0; i < got.data().size(); ++i) {
      ASSERT_EQ(got.data()[i], expect.data()[i]);
    }
  }
}

TEST(SessionPool, SubmitBatchMatchesSingleSubmits) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 71)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const nn::CompiledQuantModel reference(g, cfg, nn::ops::KernelTier::Fast,
                                         params);
  nn::SessionPool<nn::CompiledQuantModel> pool(2, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, cfg, nn::ops::KernelTier::Fast, params);
  });

  std::vector<nn::Tensor> batch;
  std::vector<nn::QTensor> expected;
  for (std::uint64_t seed = 72; seed < 77; ++seed) {
    batch.push_back(random_input(g.shape(0), seed));
    expected.push_back(reference.run(batch.back()));
  }
  auto futures = pool.submit_batch(batch);
  ASSERT_EQ(futures.size(), batch.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expect_q_identical(futures[i].get(), expected[i]);
  }
  EXPECT_EQ(pool.completed(), batch.size());

  // The whole batch runs on one session (one queue entry, arena reused
  // across the loop): exactly one session saw traffic.
  const auto counts = pool.per_session_requests();
  int sessions_used = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) {
    sessions_used += c > 0 ? 1 : 0;
    total += c;
  }
  EXPECT_EQ(sessions_used, 1);
  EXPECT_EQ(total, batch.size());

  // An empty batch is a no-op with no futures.
  EXPECT_TRUE(pool.submit_batch({}).empty());
}

TEST(SessionPool, SubmitBatchFailsOnlyTheBadItem) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 81)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const nn::CompiledQuantModel reference(g, cfg, nn::ops::KernelTier::Fast,
                                         params);
  nn::SessionPool<nn::CompiledQuantModel> pool(1, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, cfg, nn::ops::KernelTier::Fast, params);
  });

  const nn::Tensor good = random_input(g.shape(0), 82);
  const nn::QTensor expect = reference.run(good);
  std::vector<nn::Tensor> batch;
  batch.push_back(good);
  batch.push_back(random_input({4, 4, 3}, 83));  // wrong shape -> throws
  batch.push_back(good);
  auto futures = pool.submit_batch(batch);
  expect_q_identical(futures[0].get(), expect);
  EXPECT_THROW(futures[1].get(), std::exception);
  expect_q_identical(futures[2].get(), expect);
}

TEST(SessionPool, SharedSlabCapsArenaMemoryAcrossPools) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel reference(g, plan);
  const nn::Tensor in = random_input(g.shape(0), 91);
  const nn::Tensor expect = reference.run(in);

  // Two pools over the same slab: sequential traffic to each must reuse
  // one max-sized block instead of holding an arena per model.
  auto slab = std::make_shared<nn::ArenaSlab>();
  using PatchPool = nn::SessionPool<patch::CompiledPatchModel>;
  const auto factory = [&](const std::shared_ptr<nn::ArenaSlab>& s) {
    auto model = std::make_unique<patch::CompiledPatchModel>(g, plan);
    model->set_arena_source(s);
    return model;
  };
  PatchPool pool_a(1, factory, slab);
  PatchPool pool_b(1, factory, slab);
  EXPECT_EQ(pool_a.slab(), slab);
  EXPECT_EQ(pool_b.slab(), slab);

  const nn::Tensor out_a = pool_a.run(in);
  const nn::Tensor out_b = pool_b.run(in);
  ASSERT_EQ(out_a.shape(), expect.shape());
  for (std::size_t i = 0; i < expect.data().size(); ++i) {
    ASSERT_EQ(out_a.data()[i], expect.data()[i]);
    ASSERT_EQ(out_b.data()[i], expect.data()[i]);
  }
  EXPECT_EQ(slab->outstanding_leases(), 0);
  // One block serves both pools' models: max, not sum.
  EXPECT_EQ(slab->footprint_bytes(), reference.arena_bytes());
}

// Layer-based compiled models lease run arenas the same way the patch
// models do: two pools over one slab (float + quant flavours of the same
// graph), sequential traffic, and the slab holds max-sized blocks instead
// of one arena per model — with outputs bit-identical to owned-arena runs.
TEST(SessionPool, LayerBasedModelsLeaseFromSharedSlab) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 95)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const nn::CompiledQuantModel qreference(g, cfg, nn::ops::KernelTier::Fast,
                                          params);
  const nn::CompiledModel freference(g);
  const nn::Tensor in = random_input(g.shape(0), 96);
  const nn::QTensor qexpect = qreference.run(in);
  const nn::Tensor fexpect = freference.run(in);

  auto slab = std::make_shared<nn::ArenaSlab>();
  nn::SessionPool<nn::CompiledQuantModel> qpool(
      2,
      [&](const std::shared_ptr<nn::ArenaSlab>& s) {
        auto model = std::make_unique<nn::CompiledQuantModel>(
            g, cfg, nn::ops::KernelTier::Fast, params);
        model->set_arena_source(s);
        return model;
      },
      slab);
  nn::SessionPool<nn::CompiledModel> fpool(
      1,
      [&](const std::shared_ptr<nn::ArenaSlab>& s) {
        auto model = std::make_unique<nn::CompiledModel>(g);
        model->set_arena_source(s);
        return model;
      },
      slab);
  EXPECT_EQ(qpool.slab(), slab);
  EXPECT_EQ(fpool.slab(), slab);

  for (int rep = 0; rep < 3; ++rep) {
    expect_q_identical(qpool.run(in), qexpect);
    const nn::Tensor fout = fpool.run(in);
    ASSERT_EQ(fout.shape(), fexpect.shape());
    for (std::size_t i = 0; i < fexpect.data().size(); ++i) {
      ASSERT_EQ(fout.data()[i], fexpect.data()[i]);
    }
  }
  // Every lease returned, and sequential traffic never held more than one
  // block per concurrently-running request.
  EXPECT_EQ(slab->outstanding_leases(), 0);
  EXPECT_EQ(slab->high_water_bytes(),
            std::max(qreference.arena_bytes(), freference.arena_bytes()));
  // The two block sizes bound the footprint by max + smaller-model block,
  // strictly below the three-model sum an unshared fleet would hold.
  EXPECT_LE(slab->footprint_bytes(),
            qreference.arena_bytes() + freference.arena_bytes());
}

// A capacity-carrying slab is the serving memory budget: acquires beyond
// it fail with the distinct ArenaSlabExhausted (no deadlock, no partial
// lease), and a release makes room again.
TEST(ArenaSlab, CapacityBoundsAcquires) {
  nn::ArenaSlab slab(1024);
  EXPECT_EQ(slab.capacity_bytes(), 1024);
  // A single over-budget lease fails before any allocation happens.
  EXPECT_THROW((void)slab.acquire(2048), nn::ArenaSlabExhausted);
  EXPECT_EQ(slab.footprint_bytes(), 0);

  auto a = slab.acquire(512);
  auto b = slab.acquire(512);
  EXPECT_EQ(slab.footprint_bytes(), 1024);
  // Budget spent: even one more byte is refused while both are live.
  EXPECT_THROW((void)slab.acquire(1), nn::ArenaSlabExhausted);
  // The failed acquire changed nothing — existing leases still valid.
  EXPECT_EQ(slab.outstanding_leases(), 2);

  // Releasing frees a block for reuse (best-fit, no new allocation).
  a.release();
  auto c = slab.acquire(256);
  EXPECT_EQ(slab.footprint_bytes(), 1024);
  b.release();
  c.release();
  EXPECT_EQ(slab.outstanding_leases(), 0);
}

// Concurrent leasing against an exhausted slab: every contender gets the
// graceful error (never blocks), the holder's lease is untouched, and the
// moment it releases the same threads' retries succeed.
TEST(ArenaSlab, ConcurrentExhaustionFailsGracefullyThenRecovers) {
  nn::ArenaSlab slab(1024);
  auto holder = slab.acquire(1024);  // the whole budget

  constexpr int kThreads = 4;
  std::atomic<int> exhausted{0};
  {
    std::vector<std::thread> contenders;
    for (int t = 0; t < kThreads; ++t) {
      contenders.emplace_back([&] {
        try {
          (void)slab.acquire(256);
        } catch (const nn::ArenaSlabExhausted&) {
          exhausted.fetch_add(1);
        }
      });
    }
    for (std::thread& t : contenders) t.join();
  }
  // Joining at all proves no contender deadlocked; all were shed.
  EXPECT_EQ(exhausted.load(), kThreads);
  EXPECT_EQ(slab.outstanding_leases(), 1);
  EXPECT_EQ(slab.footprint_bytes(), 1024);

  holder.release();
  // Room again: concurrent retries all succeed (serially reusing the free
  // 1024-byte block and allocating nothing new past it is best-fit's
  // business; what matters here is no error and balanced accounting).
  std::atomic<int> succeeded{0};
  {
    std::vector<std::thread> retries;
    for (int t = 0; t < kThreads; ++t) {
      retries.emplace_back([&] {
        try {
          auto lease = slab.acquire(128);
          succeeded.fetch_add(1);
        } catch (const nn::ArenaSlabExhausted&) {
        }
      });
    }
    for (std::thread& t : retries) t.join();
  }
  EXPECT_GE(succeeded.load(), 1);
  EXPECT_EQ(slab.outstanding_leases(), 0);
  EXPECT_LE(slab.footprint_bytes(), slab.capacity_bytes());
}

// The exhaustion error travels through a SessionPool future like any model
// exception: the one request is shed, the lane stays serviceable, and no
// lease leaks.
TEST(SessionPool, SlabExhaustionShedsTheRequestNotTheLane) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  // Far too small for any run arena: every leased run must shed.
  auto slab = std::make_shared<nn::ArenaSlab>(64);
  nn::SessionPool<patch::CompiledPatchModel> pool(
      1,
      [&](const std::shared_ptr<nn::ArenaSlab>& s) {
        auto model = std::make_unique<patch::CompiledPatchModel>(g, plan);
        model->set_arena_source(s);
        return model;
      },
      slab);

  const nn::Tensor in = random_input(g.shape(0), 97);
  auto first = pool.submit(in);
  EXPECT_THROW(first.get(), nn::ArenaSlabExhausted);
  // The serving thread survived the throw — the next request reaches the
  // model (and sheds the same way, since the budget is still too small).
  auto second = pool.submit(in);
  EXPECT_THROW(second.get(), nn::ArenaSlabExhausted);
  EXPECT_EQ(slab->outstanding_leases(), 0);
  EXPECT_EQ(slab->footprint_bytes(), 0);
  EXPECT_EQ(pool.completed(), 0u);
}

TEST(InferenceSession, CountsRequests) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  nn::InferenceSession<nn::CompiledModel> session(
      std::make_unique<nn::CompiledModel>(g));
  const nn::Tensor in = random_input(g.shape(0), 16);
  (void)session.run(in);
  (void)session.run(in);
  EXPECT_EQ(session.requests_served(), 2u);
  EXPECT_EQ(&session.model().graph(), &g);
}

}  // namespace
}  // namespace qmcu
