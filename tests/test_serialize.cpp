// Tests for binary model serialization (nn/serialize.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>

#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "nn/serialize.h"
#include "quant/calibration.h"

namespace qmcu::nn {
namespace {

Graph sample_graph() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 32;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

Tensor random_input(TensorShape s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(Serialize, RoundTripPreservesStructure) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const Graph back = read_graph(ss);
  ASSERT_EQ(back.size(), g.size());
  EXPECT_EQ(back.name(), g.name());
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_EQ(back.layer(i).kind, g.layer(i).kind) << i;
    EXPECT_EQ(back.layer(i).name, g.layer(i).name) << i;
    EXPECT_EQ(back.layer(i).inputs, g.layer(i).inputs) << i;
    EXPECT_EQ(back.layer(i).act, g.layer(i).act) << i;
    EXPECT_EQ(back.shape(i), g.shape(i)) << i;
  }
}

TEST(Serialize, RoundTripPreservesParametersBitExactly) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const Graph back = read_graph(ss);
  for (int i = 0; i < g.size(); ++i) {
    ASSERT_EQ(back.has_parameters(i), g.has_parameters(i)) << i;
    const auto wa = g.weights(i);
    const auto wb = back.weights(i);
    ASSERT_EQ(wa.size(), wb.size()) << i;
    for (std::size_t j = 0; j < wa.size(); ++j) {
      ASSERT_EQ(wa[j], wb[j]) << "layer " << i;
    }
  }
}

TEST(Serialize, LoadedModelComputesIdenticalOutputs) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const Graph back = read_graph(ss);
  const Tensor in = random_input(g.shape(0), 3);
  const Tensor a = Executor(g).run(in);
  const Tensor b = Executor(back).run(in);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Serialize, FileRoundTrip) {
  const Graph g = sample_graph();
  const std::string path = ::testing::TempDir() + "/model.qmcu";
  save_graph(g, path);
  const Graph back = load_graph(path);
  EXPECT_EQ(back.size(), g.size());
  EXPECT_EQ(back.total_macs(), g.total_macs());
}

TEST(Serialize, RejectsWrongMagic) {
  std::stringstream ss;
  ss << "NOPE0000 garbage";
  EXPECT_THROW(read_graph(ss), std::invalid_argument);
}

TEST(Serialize, RejectsTruncatedFile) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_graph(cut), std::invalid_argument);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_graph("/nonexistent/path/model.qmcu"),
               std::invalid_argument);
}

TEST(Serialize, RejectsTruncationAtEveryPrefixLength) {
  // Any strict prefix must be rejected — the payload-size framing plus the
  // trailing checksum mean no truncation point can slip through, including
  // cuts inside the header and one byte short of the full stream.
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const std::string full = ss.str();
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{7},
                          std::size_t{11}, std::size_t{19},
                          full.size() / 3, full.size() - 1}) {
    std::stringstream prefix(full.substr(0, cut));
    EXPECT_THROW(read_graph(prefix), std::invalid_argument) << "cut=" << cut;
  }
}

TEST(Serialize, RejectsBitFlippedStream) {
  // Flip one bit at a spread of positions across the stream (header fields,
  // payload, checksum trailer): every single one must fail loudly.
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  const std::string full = ss.str();
  for (std::size_t pos = 0; pos < full.size();
       pos += std::max<std::size_t>(1, full.size() / 97)) {
    std::string bad = full;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x10);
    std::stringstream corrupted(bad);
    EXPECT_THROW(read_graph(corrupted), std::invalid_argument)
        << "flip at byte " << pos;
  }
}

TEST(Serialize, RejectsUnsupportedVersion) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  std::string bad = ss.str();
  bad[4] = 99;  // version word follows the 4-byte magic (little-endian)
  std::stringstream vs(bad);
  EXPECT_THROW(read_graph(vs), std::invalid_argument);
}

TEST(Serialize, RejectsByteSwappedEndianSentinel) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  std::string bad = ss.str();
  // The sentinel 0x01020304 sits after magic+version; byte-swap it the way
  // a big-endian writer would have laid it down.
  std::swap(bad[8], bad[11]);
  std::swap(bad[9], bad[10]);
  std::stringstream es(bad);
  EXPECT_THROW(read_graph(es), std::invalid_argument);
}

TEST(Serialize, QuantConfigRejectsTruncationAndCorruption) {
  const Graph g = sample_graph();
  const std::vector<Tensor> calib{random_input(g.shape(0), 8)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));
  std::stringstream ss;
  write_quant_config(cfg, ss);
  const std::string full = ss.str();

  std::stringstream cut(full.substr(0, full.size() - 3));
  EXPECT_THROW(read_quant_config(cut), std::invalid_argument);

  std::string flipped = full;
  flipped[full.size() / 2] = static_cast<char>(flipped[full.size() / 2] ^ 1);
  std::stringstream cs(flipped);
  EXPECT_THROW(read_quant_config(cs), std::invalid_argument);
}

TEST(Serialize, QuantConfigRoundTrip) {
  const Graph g = sample_graph();
  const std::vector<Tensor> calib{random_input(g.shape(0), 5)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  std::vector<int> bits = uniform_bits(g, 8);
  bits[2] = 4;
  bits[5] = 2;
  const ActivationQuantConfig cfg = quant::make_quant_config(g, ranges, bits);

  std::stringstream ss;
  write_quant_config(cfg, ss);
  const ActivationQuantConfig back = read_quant_config(ss);
  ASSERT_EQ(back.params.size(), cfg.params.size());
  for (std::size_t i = 0; i < cfg.params.size(); ++i) {
    EXPECT_EQ(back.params[i], cfg.params[i]) << i;
  }
}

TEST(Serialize, QuantConfigRejectsGraphFile) {
  const Graph g = sample_graph();
  std::stringstream ss;
  write_graph(g, ss);
  EXPECT_THROW(read_quant_config(ss), std::invalid_argument);
}

TEST(Serialize, DeployedPackageReproducesQuantizedInference) {
  // The full "converter" story: save model + config, reload both, get the
  // exact same integer outputs.
  const Graph g = sample_graph();
  const std::vector<Tensor> calib{random_input(g.shape(0), 6)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));

  std::stringstream gs;
  std::stringstream cs;
  write_graph(g, gs);
  write_quant_config(cfg, cs);
  const Graph g2 = read_graph(gs);
  const ActivationQuantConfig cfg2 = read_quant_config(cs);

  const Tensor in = random_input(g.shape(0), 7);
  const QTensor a = QuantExecutor(g, cfg).run(in);
  const QTensor b = QuantExecutor(g2, cfg2).run(in);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]);
  }
}

}  // namespace
}  // namespace qmcu::nn
