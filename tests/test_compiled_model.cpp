// Compiled arena execution (nn/compiled_model.h, patch/compiled_patch_model.h)
// must be bit-identical to the heap-per-layer legacy paths across float,
// int8 and mixed sub-byte patch modes, for owned and caller-provided
// arenas, and must share prebuilt QuantizedParameters across executors.
#include <gtest/gtest.h>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/weights.h"
#include "models/zoo.h"
#include "nn/compiled_model.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

nn::Graph small_net() {
  nn::Graph g("small");
  const int in = g.add_input(nn::TensorShape{16, 16, 3});
  const int stem =
      g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU6, "stem");
  const int a = g.add_conv2d(stem, 8, 3, 1, 1, nn::Activation::ReLU, "a");
  const int b = g.add_conv2d(a, 8, 3, 1, 1, nn::Activation::None, "b");
  const int add = g.add_residual_add(stem, b, nn::Activation::ReLU, "res");
  const int dw = g.add_depthwise_conv2d(add, 3, 2, 1, nn::Activation::ReLU6);
  const int gap = g.add_global_avg_pool(dw);
  const int fc = g.add_fully_connected(gap, 10, nn::Activation::None);
  g.add_softmax(fc);
  models::init_parameters(g, 42);
  return g;
}

nn::Graph mbv2_net() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

void expect_f_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

// --- borrowed-storage tensor semantics -------------------------------------

TEST(BorrowedTensor, ViewsAliasAndCopiesDetach) {
  std::vector<float> storage(12, 0.0f);
  nn::Tensor view(nn::TensorShape{2, 2, 3}, std::span<float>(storage));
  EXPECT_FALSE(view.owns_storage());
  view.at(1, 1, 2) = 5.0f;
  EXPECT_EQ(storage[11], 5.0f);  // writes land in the borrowed buffer

  nn::Tensor copy = view;  // deep copy detaches from the arena
  EXPECT_TRUE(copy.owns_storage());
  storage[11] = -1.0f;
  EXPECT_EQ(copy.at(1, 1, 2), 5.0f);

  nn::Tensor moved = std::move(copy);  // move keeps the owned buffer valid
  EXPECT_TRUE(moved.owns_storage());
  EXPECT_EQ(moved.at(1, 1, 2), 5.0f);
}

TEST(BorrowedTensor, QuantizedViewRoundTrips) {
  std::vector<std::int8_t> storage(4, 0);
  const nn::QuantParams p = nn::choose_quant_params(-1.0f, 1.0f, 8);
  nn::QTensor view(nn::TensorShape{1, 1, 4}, p, std::span<std::int8_t>(storage));
  EXPECT_FALSE(view.owns_storage());
  view.at(0, 0, 1) = 7;
  EXPECT_EQ(storage[1], 7);
  nn::QTensor copy = view;
  EXPECT_TRUE(copy.owns_storage());
  EXPECT_EQ(copy.at(0, 0, 1), 7);
}

// --- float parity -----------------------------------------------------------

TEST(CompiledModel, MatchesMemoExecutorBitExact) {
  const nn::Graph g = small_net();
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), 1);
  const auto memo = exec.run_all(in);  // legacy heap-per-layer path
  expect_f_identical(exec.run(in), memo.back());

  // Both kernel tiers, directly on the compiled model.
  for (const auto tier :
       {nn::ops::KernelTier::Fast, nn::ops::KernelTier::Reference}) {
    const nn::CompiledModel model(g, tier);
    const nn::Executor ref(g, tier);
    expect_f_identical(model.run(in), ref.run_all(in).back());
  }
}

TEST(CompiledModel, CallerProvidedArenaMatchesOwned) {
  const nn::Graph g = small_net();
  const nn::CompiledModel model(g);
  const nn::Tensor in = random_input(g.shape(0), 2);
  const nn::Tensor owned = model.run(in);

  std::vector<std::uint8_t> sram(
      static_cast<std::size_t>(model.arena_bytes()));
  expect_f_identical(model.run(in, sram), owned);
  // Reuse with a second input: no stale state may leak between runs.
  const nn::Tensor in2 = random_input(g.shape(0), 3);
  expect_f_identical(model.run(in2, sram), model.run(in2));
}

TEST(CompiledModel, RejectsUndersizedArena) {
  const nn::Graph g = small_net();
  const nn::CompiledModel model(g);
  std::vector<std::uint8_t> tiny(
      static_cast<std::size_t>(model.arena_bytes() - 1));
  EXPECT_THROW(model.run(random_input(g.shape(0), 4), tiny),
               std::invalid_argument);
}

TEST(CompiledModel, RepeatedRunsAreDeterministic) {
  const nn::Graph g = mbv2_net();
  const nn::CompiledModel model(g);
  const nn::Tensor in = random_input(g.shape(0), 5);
  expect_f_identical(model.run(in), model.run(in));
}

// --- quantized parity --------------------------------------------------------

TEST(CompiledQuantModel, MatchesMemoExecutorAcrossBitwidths) {
  const nn::Graph g = small_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 6),
                                      random_input(g.shape(0), 7)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const nn::Tensor in = random_input(g.shape(0), 8);

  // Uniform 8/4/2-bit and a mixed per-layer assignment.
  std::vector<std::vector<int>> assignments{
      nn::uniform_bits(g, 8), nn::uniform_bits(g, 4), nn::uniform_bits(g, 2)};
  std::vector<int> mixed = nn::uniform_bits(g, 8);
  for (std::size_t i = 0; i < mixed.size(); i += 2) mixed[i] = 4;
  assignments.push_back(mixed);

  for (const auto& bits : assignments) {
    const auto cfg = quant::make_quant_config(g, ranges, bits);
    const nn::QuantExecutor qexec(g, cfg);
    const auto memo = qexec.run_all(in);  // legacy heap-per-layer path
    expect_q_identical(qexec.run(in), memo.back());
  }
}

TEST(CompiledQuantModel, ReferenceTierParity) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 9)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::Tensor in = random_input(g.shape(0), 10);
  const nn::CompiledQuantModel fast(g, cfg, nn::ops::KernelTier::Fast);
  const nn::CompiledQuantModel ref(g, cfg, nn::ops::KernelTier::Reference);
  expect_q_identical(fast.run(in), ref.run(in));
}

TEST(CompiledQuantModel, CallerProvidedArenaMatchesOwned) {
  const nn::Graph g = mbv2_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 11)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::CompiledQuantModel model(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 12);
  std::vector<std::uint8_t> sram(
      static_cast<std::size_t>(model.arena_bytes()));
  expect_q_identical(model.run(in, sram), model.run(in));
}

TEST(CompiledQuantModel, SharedParametersAcrossExecutors) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 13)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);

  const nn::QuantExecutor a(g, cfg, nn::ops::KernelTier::Fast, params);
  const nn::QuantExecutor b(g, cfg, nn::ops::KernelTier::Fast, params);
  EXPECT_EQ(a.shared_parameters().get(), params.get());
  EXPECT_EQ(b.shared_parameters().get(), params.get());
  const nn::QuantExecutor fresh(g, cfg);  // builds its own
  const nn::Tensor in = random_input(g.shape(0), 14);
  expect_q_identical(a.run(in), fresh.run(in));
  expect_q_identical(b.run(in), fresh.run(in));
}

// --- patch parity ------------------------------------------------------------

TEST(CompiledPatchModel, MatchesLegacyHookedPath) {
  const nn::Graph g = mbv2_net();
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::PatchExecutor pexec(g, plan);
  const nn::Tensor in = random_input(g.shape(0), 15);
  // A no-op hook forces the legacy per-step-tensor path.
  const patch::PatchExecutor::StepHook noop = [](int, int, nn::Tensor&) {};
  expect_f_identical(pexec.run(in), pexec.run(in, noop));
}

TEST(CompiledPatchQuantModel, UniformMatchesLegacyReconstruction) {
  const nn::Graph g = mbv2_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 16)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::PatchQuantExecutor pexec(g, plan, cfg);
  const nn::Tensor in = random_input(g.shape(0), 17);

  // Legacy full inference: per-step region tensors + heap tail.
  const int split = pexec.plan().spec.split_layer;
  const auto effective = nn::effective_output_params(g, cfg);
  std::vector<nn::QTensor> memo(static_cast<std::size_t>(g.size()));
  memo[static_cast<std::size_t>(split)] = pexec.run_stage_assembled(in);
  for (int id = split + 1; id < g.size(); ++id) {
    memo[static_cast<std::size_t>(id)] =
        nn::run_layer_q(g, id, memo, *pexec.shared_parameters(),
                        effective[static_cast<std::size_t>(id)]);
  }
  expect_q_identical(pexec.run(in),
                     memo[static_cast<std::size_t>(g.output())]);
}

TEST(CompiledPatchQuantModel, MixedModeMatchesLegacyReconstruction) {
  const nn::Graph g = mbv2_net();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);
  const patch::PatchQuantExecutor pexec(g, plan.patch_plan, deploy_cfg,
                                        branch_cfgs);
  const nn::Tensor in = ds.image(19);

  const int split = pexec.plan().spec.split_layer;
  const auto effective = nn::effective_output_params(g, deploy_cfg);
  std::vector<nn::QTensor> memo(static_cast<std::size_t>(g.size()));
  memo[static_cast<std::size_t>(split)] = pexec.run_stage_assembled(in);
  for (int id = split + 1; id < g.size(); ++id) {
    memo[static_cast<std::size_t>(id)] =
        nn::run_layer_q(g, id, memo, *pexec.shared_parameters(),
                        effective[static_cast<std::size_t>(id)]);
  }
  expect_q_identical(pexec.run(in),
                     memo[static_cast<std::size_t>(g.output())]);
}

TEST(CompiledPatchQuantModel, SharedParametersAcrossPatchExecutors) {
  const nn::Graph g = mbv2_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 20)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::PatchQuantExecutor a(g, plan, cfg,
                                    nn::ops::KernelTier::Fast, params);
  const nn::QuantExecutor layer(g, cfg, nn::ops::KernelTier::Fast, params);
  EXPECT_EQ(a.shared_parameters().get(), params.get());
  const nn::Tensor in = random_input(g.shape(0), 21);
  expect_q_identical(a.run(in), layer.run(in));
}

}  // namespace
}  // namespace qmcu
