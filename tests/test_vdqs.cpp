// Tests for Value-Driven Quantization Search (core/vdqs.h): the score of
// Eq. 6 and Algorithm 1's bitwidth determination with Eq. 7 repair.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/vdqs.h"
#include "nn/rng.h"

namespace qmcu::core {
namespace {

FeatureMapProfile fm(std::int64_t elements, std::int64_t consumer_macs,
                     double h_float, double h8, double h4, double h2) {
  FeatureMapProfile p;
  p.elements = elements;
  p.consumer_macs = consumer_macs;
  p.entropy_float = h_float;
  p.entropy_at_bits = {h8, h4, h2};
  return p;
}

VdqsConfig config(std::int64_t budget, double lambda = 0.6) {
  VdqsConfig cfg;
  cfg.lambda = lambda;
  cfg.memory_budget = budget;
  cfg.reference_bitops = 1'000'000;
  cfg.last_output_entropy = 2.0;
  return cfg;
}

TEST(QuantizationScore, MatchesHandComputation) {
  const FeatureMapProfile p = fm(100, 1000, 3.0, 2.9, 2.5, 1.5);
  const VdqsConfig cfg = config(1 << 20, 0.5);
  // Phi(i,4) = 1000*8*(8-4)/1e6 = 0.032; Omega = (3.0-2.5)/2 = 0.25.
  // S = -0.5*0.25 + 0.5*0.032 = -0.109.
  EXPECT_NEAR(quantization_score(p, 4, cfg), -0.109, 1e-9);
}

TEST(QuantizationScore, LambdaZeroIgnoresEntropy) {
  const FeatureMapProfile p = fm(100, 1000, 3.0, 2.9, 2.0, 0.1);
  const VdqsConfig cfg = config(1 << 20, 0.0);
  // Pure computation: lower bits always score higher.
  EXPECT_GT(quantization_score(p, 2, cfg), quantization_score(p, 4, cfg));
  EXPECT_GT(quantization_score(p, 4, cfg), quantization_score(p, 8, cfg));
}

TEST(QuantizationScore, LambdaOneIgnoresComputation) {
  const FeatureMapProfile p = fm(100, 1000, 3.0, 2.9, 2.0, 0.1);
  const VdqsConfig cfg = config(1 << 20, 1.0);
  // Pure accuracy: higher bits preserve entropy and score higher.
  EXPECT_GT(quantization_score(p, 8, cfg), quantization_score(p, 4, cfg));
  EXPECT_GT(quantization_score(p, 4, cfg), quantization_score(p, 2, cfg));
}

TEST(QuantizationScore, EntropyClampStopsNegativeDeltas) {
  // Quantized estimate slightly above float (binning noise): Omega = 0.
  const FeatureMapProfile p = fm(100, 1000, 3.0, 3.01, 3.02, 3.0);
  const VdqsConfig cfg = config(1 << 20, 1.0);
  EXPECT_DOUBLE_EQ(quantization_score(p, 8, cfg), 0.0);
}

TEST(FeatureMapBytes, PacksSubByte) {
  const FeatureMapProfile p = fm(100, 0, 0, 0, 0, 0);
  EXPECT_EQ(feature_map_bytes(p, 8), 100);
  EXPECT_EQ(feature_map_bytes(p, 4), 50);
  EXPECT_EQ(feature_map_bytes(p, 2), 25);
}

TEST(VdqsSearch, UnconstrainedPicksArgmaxScore) {
  // Entropy-insensitive fms with big compute benefit: expect 2 bits.
  std::vector<FeatureMapProfile> fms{
      fm(100, 100000, 3.0, 3.0, 3.0, 3.0),
      fm(100, 100000, 3.0, 3.0, 3.0, 3.0)};
  const VdqsResult r = vdqs_search(fms, config(1 << 20));
  EXPECT_EQ(r.bits, (std::vector<int>{2, 2}));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.repair_rounds, 0);
}

TEST(VdqsSearch, EntropySensitiveMapsKeepEightBits) {
  // Catastrophic entropy loss below 8 bits, tiny compute benefit.
  std::vector<FeatureMapProfile> fms{
      fm(100, 10, 3.0, 2.99, 0.5, 0.1),
      fm(100, 10, 3.0, 2.99, 0.4, 0.05)};
  VdqsConfig cfg = config(1 << 20, 0.9);
  const VdqsResult r = vdqs_search(fms, cfg);
  EXPECT_EQ(r.bits, (std::vector<int>{8, 8}));
}

TEST(VdqsSearch, MemoryRepairEnforcesEq7) {
  // Two 1000-element fms preferring 8 bits; budget admits only 8+4.
  std::vector<FeatureMapProfile> fms{
      fm(1000, 10, 3.0, 2.99, 0.5, 0.1),
      fm(1000, 10, 3.0, 2.99, 0.5, 0.1)};
  VdqsConfig cfg = config(1500, 0.9);  // 1000 + 1000 > 1500
  const VdqsResult r = vdqs_search(fms, cfg);
  EXPECT_TRUE(r.feasible);
  for (std::size_t i = 0; i + 1 < r.bits.size(); ++i) {
    EXPECT_LE(feature_map_bytes(fms[i], r.bits[i]) +
                  feature_map_bytes(fms[i + 1], r.bits[i + 1]),
              cfg.memory_budget);
  }
  EXPECT_GT(r.repair_rounds, 0);
}

TEST(VdqsSearch, RepairDemotesTheLargerFeatureMap) {
  // fm0 tiny, fm1 huge; the pair violates the budget: fm1 must drop.
  std::vector<FeatureMapProfile> fms{
      fm(10, 10, 3.0, 2.99, 0.5, 0.1),
      fm(4000, 10, 3.0, 2.99, 0.5, 0.1)};
  VdqsConfig cfg = config(2100, 0.9);
  const VdqsResult r = vdqs_search(fms, cfg);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.bits[0], 8);
  EXPECT_LT(r.bits[1], 8);
}

TEST(VdqsSearch, InfeasibleBudgetReported) {
  // Even all-2-bit cannot fit.
  std::vector<FeatureMapProfile> fms{
      fm(4000, 10, 3.0, 2.9, 2.5, 2.0),
      fm(4000, 10, 3.0, 2.9, 2.5, 2.0)};
  VdqsConfig cfg = config(100, 0.5);
  const VdqsResult r = vdqs_search(fms, cfg);
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.bits, (std::vector<int>{2, 2}));  // best effort
}

TEST(VdqsSearch, LongChainConverges) {
  std::vector<FeatureMapProfile> fms;
  for (int i = 0; i < 24; ++i) {
    fms.push_back(fm(500 + 100 * (i % 5), 1000, 3.0, 2.95, 2.4, 1.2));
  }
  VdqsConfig cfg = config(900, 0.6);
  const VdqsResult r = vdqs_search(fms, cfg);
  EXPECT_TRUE(r.feasible);
  for (std::size_t i = 0; i + 1 < r.bits.size(); ++i) {
    EXPECT_LE(feature_map_bytes(fms[i], r.bits[i]) +
                  feature_map_bytes(fms[i + 1], r.bits[i + 1]),
              cfg.memory_budget);
  }
}

// Property sweep (Table III shape): larger lambda never lowers the chosen
// bitwidths — accuracy pressure keeps maps at higher precision.
TEST(VdqsSearch, BitwidthsMonotoneInLambda) {
  std::vector<FeatureMapProfile> fms{
      fm(100, 50000, 3.0, 2.9, 2.2, 1.0),
      fm(200, 30000, 2.5, 2.45, 2.0, 0.8),
      fm(400, 10000, 2.0, 1.95, 1.7, 0.9)};
  std::vector<int> prev_sum{0};
  int last = 0;
  for (double lambda : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const VdqsResult r = vdqs_search(fms, config(1 << 20, lambda));
    int sum = 0;
    for (int b : r.bits) sum += b;
    EXPECT_GE(sum, last) << "lambda " << lambda;
    last = sum;
  }
}

TEST(VdqsSearch, ScoresExposedForEveryCandidate) {
  std::vector<FeatureMapProfile> fms{fm(10, 10, 3.0, 2.9, 2.5, 2.0)};
  const VdqsResult r = vdqs_search(fms, config(1 << 20));
  ASSERT_EQ(r.scores.size(), 1u);
  // Scores must differ across candidates for a non-degenerate profile.
  EXPECT_NE(r.scores[0][0], r.scores[0][2]);
}

TEST(VdqsSearch, RejectsBadConfig) {
  std::vector<FeatureMapProfile> fms{fm(10, 10, 3.0, 2.9, 2.5, 2.0)};
  VdqsConfig cfg = config(0);
  EXPECT_THROW(vdqs_search(fms, cfg), std::invalid_argument);
  EXPECT_THROW(vdqs_search({}, config(100)), std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::core

// ---------------------------------------------------------------------------
// Brute-force cross-checks: on branches small enough to enumerate all 3^N
// assignments, Algorithm 1's result must (a) be feasible whenever any
// feasible assignment exists, and (b) match the exhaustive argmax when the
// memory constraint does not bind.
namespace qmcu::core {
namespace {

double total_score(std::span<const FeatureMapProfile> fms,
                   std::span<const int> bits, const VdqsConfig& cfg) {
  double s = 0.0;
  for (std::size_t i = 0; i < fms.size(); ++i) {
    s += quantization_score(fms[i], bits[i], cfg);
  }
  return s;
}

bool feasible(std::span<const FeatureMapProfile> fms,
              std::span<const int> bits, const VdqsConfig& cfg) {
  for (std::size_t i = 0; i + 1 < fms.size(); ++i) {
    if (feature_map_bytes(fms[i], bits[i]) +
            feature_map_bytes(fms[i + 1], bits[i + 1]) >
        cfg.memory_budget) {
      return false;
    }
  }
  return true;
}

// Enumerates all assignments; returns best feasible score or NaN if none.
double brute_force_best(std::span<const FeatureMapProfile> fms,
                        const VdqsConfig& cfg) {
  const int n = static_cast<int>(fms.size());
  std::vector<int> bits(static_cast<std::size_t>(n), 0);
  double best = std::numeric_limits<double>::quiet_NaN();
  const int total = 1 << (2 * n);  // 4^n counter, skip the unused value 3
  for (int code = 0; code < total; ++code) {
    bool valid = true;
    for (int i = 0; i < n; ++i) {
      const int d = (code >> (2 * i)) & 3;
      if (d == 3) {
        valid = false;
        break;
      }
      bits[static_cast<std::size_t>(i)] =
          kVdqsCandidateBits[static_cast<std::size_t>(d)];
    }
    if (!valid || !feasible(fms, bits, cfg)) continue;
    const double s = total_score(fms, bits, cfg);
    if (std::isnan(best) || s > best) best = s;
  }
  return best;
}

class VdqsVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VdqsVsBruteForce, FeasibleWheneverPossibleAndOptimalUnconstrained) {
  nn::Rng rng(GetParam());
  const int n = 3 + static_cast<int>(rng.uniform() * 4.0);  // 3..6 maps
  std::vector<FeatureMapProfile> fms;
  for (int i = 0; i < n; ++i) {
    FeatureMapProfile p;
    p.elements = 200 + static_cast<std::int64_t>(rng.uniform() * 2000.0);
    p.consumer_macs =
        1000 + static_cast<std::int64_t>(rng.uniform() * 1e6);
    p.entropy_float = rng.uniform(1.0, 3.0);
    const double h8 = p.entropy_float - rng.uniform(0.0, 0.05);
    const double h4 = h8 - rng.uniform(0.0, 0.8);
    const double h2 = h4 - rng.uniform(0.0, 1.0);
    p.entropy_at_bits = {h8, h4, std::max(0.0, h2)};
    fms.push_back(p);
  }
  VdqsConfig cfg;
  cfg.lambda = rng.uniform(0.2, 0.8);
  cfg.reference_bitops = 64'000'000;
  cfg.last_output_entropy = 2.0;

  // (b) unconstrained: Algorithm 1 = exhaustive argmax.
  cfg.memory_budget = 1 << 30;
  const VdqsResult unconstrained = vdqs_search(fms, cfg);
  EXPECT_NEAR(total_score(fms, unconstrained.bits, cfg),
              brute_force_best(fms, cfg), 1e-12);

  // (a) constrained: pick a budget that some assignment satisfies (the
  // all-2-bit floor plus slack) — Algorithm 1 must find a feasible config.
  std::int64_t floor_pair = 0;
  for (std::size_t i = 0; i + 1 < fms.size(); ++i) {
    floor_pair = std::max(floor_pair, feature_map_bytes(fms[i], 2) +
                                          feature_map_bytes(fms[i + 1], 2));
  }
  cfg.memory_budget = floor_pair + static_cast<std::int64_t>(
                                       rng.uniform() * floor_pair);
  const double best = brute_force_best(fms, cfg);
  ASSERT_FALSE(std::isnan(best));  // by construction feasible
  const VdqsResult constrained = vdqs_search(fms, cfg);
  EXPECT_TRUE(constrained.feasible) << "seed " << GetParam();
  EXPECT_TRUE(feasible(fms, constrained.bits, cfg));
  // The greedy repair need not be optimal, but must not be absurd: it keeps
  // at least the all-2-bit baseline score.
  const std::vector<int> all2(static_cast<std::size_t>(n), 2);
  EXPECT_GE(total_score(fms, constrained.bits, cfg),
            total_score(fms, all2, cfg) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, VdqsVsBruteForce,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace qmcu::core
