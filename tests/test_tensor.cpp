// Unit tests for Tensor / QTensor (nn/tensor.h).
#include <gtest/gtest.h>

#include "nn/tensor.h"

namespace qmcu::nn {
namespace {

TEST(TensorShape, ElementsAndBytes) {
  const TensorShape s{4, 5, 3};
  EXPECT_EQ(s.elements(), 60);
  EXPECT_EQ(s.bytes(8), 60);
  EXPECT_EQ(s.bytes(4), 30);
  EXPECT_EQ(s.bytes(2), 15);
}

TEST(TensorShape, SubByteBytesRoundUp) {
  const TensorShape s{1, 1, 3};  // 3 elements
  EXPECT_EQ(s.bytes(4), 2);      // 12 bits -> 2 bytes
  EXPECT_EQ(s.bytes(2), 1);      // 6 bits -> 1 byte
}

TEST(Tensor, IndexingIsRowMajorNhwc) {
  Tensor t(TensorShape{2, 2, 2});
  float v = 0.0f;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      for (int c = 0; c < 2; ++c) t.at(y, x, c) = v++;
    }
  }
  const auto d = t.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_FLOAT_EQ(d[i], static_cast<float>(i));
  }
}

TEST(Tensor, ConstructionValidatesShapeAndSize) {
  EXPECT_THROW(Tensor(TensorShape{0, 1, 1}), std::invalid_argument);
  EXPECT_THROW(Tensor(TensorShape{2, 2, 1}, std::vector<float>(3)),
               std::invalid_argument);
}

TEST(QTensor, QuantizeDequantizeRoundTrip) {
  Tensor t(TensorShape{1, 1, 4}, {0.0f, 1.0f, -1.0f, 0.5f});
  const QuantParams p = choose_quant_params(-1.0f, 1.0f, 8);
  const QTensor q = quantize(t, p);
  const Tensor back = dequantize(q);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(back.at(0, 0, c), t.at(0, 0, c), p.scale * 0.5f + 1e-6f);
  }
}

TEST(QTensor, StorageBytesReflectBitPacking) {
  const QuantParams p4 = choose_quant_params(-1.0f, 1.0f, 4);
  const QTensor q(TensorShape{2, 2, 2}, p4);  // 8 elements at 4 bits
  EXPECT_EQ(q.storage_bytes(), 4);
}

TEST(FakeQuantize, IdentityForRepresentableValues) {
  const QuantParams p = choose_quant_params(-2.0f, 2.0f, 8);
  // Values exactly on the grid round-trip exactly.
  Tensor t(TensorShape{1, 1, 2}, {p.dequantize(10), p.dequantize(-7)});
  const Tensor fq = fake_quantize(t, p);
  EXPECT_FLOAT_EQ(fq.at(0, 0, 0), t.at(0, 0, 0));
  EXPECT_FLOAT_EQ(fq.at(0, 0, 1), t.at(0, 0, 1));
}

TEST(FakeQuantize, CoarserBitsMeanLargerError) {
  Tensor t(TensorShape{1, 1, 64});
  for (int c = 0; c < 64; ++c) {
    t.at(0, 0, c) = -2.0f + 4.0f * static_cast<float>(c) / 63.0f;
  }
  double err8 = 0.0;
  double err2 = 0.0;
  const auto [lo, hi] = tensor_min_max(t);
  const Tensor f8 = fake_quantize(t, choose_quant_params(lo, hi, 8));
  const Tensor f2 = fake_quantize(t, choose_quant_params(lo, hi, 2));
  for (int c = 0; c < 64; ++c) {
    err8 += std::abs(f8.at(0, 0, c) - t.at(0, 0, c));
    err2 += std::abs(f2.at(0, 0, c) - t.at(0, 0, c));
  }
  EXPECT_LT(err8, err2);
}

TEST(TensorMinMax, FindsExtremes) {
  Tensor t(TensorShape{1, 2, 2}, {3.0f, -7.0f, 0.0f, 2.0f});
  const auto [lo, hi] = tensor_min_max(t);
  EXPECT_FLOAT_EQ(lo, -7.0f);
  EXPECT_FLOAT_EQ(hi, 3.0f);
}

}  // namespace
}  // namespace qmcu::nn
