// Tests for BitOPs accounting and the device cost model (mcu/).
#include <gtest/gtest.h>

#include "mcu/bitops.h"
#include "mcu/cost_model.h"
#include "mcu/device.h"
#include "nn/memory_planner.h"

namespace qmcu::mcu {
namespace {

nn::Graph two_conv() {
  nn::Graph g("t");
  const int in = g.add_input(nn::TensorShape{8, 8, 3});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, nn::Activation::ReLU);
  g.add_conv2d(a, 8, 3, 1, 1, nn::Activation::ReLU);
  return g;
}

TEST(BitOps, LayerBitopsIsMacsTimesBitProduct) {
  const nn::Graph g = two_conv();
  EXPECT_EQ(layer_bitops(g, 1, 8, 8), g.macs(1) * 64);
  EXPECT_EQ(layer_bitops(g, 1, 8, 4), g.macs(1) * 32);
  EXPECT_EQ(layer_bitops(g, 1, 8, 2), g.macs(1) * 16);
}

TEST(BitOps, GraphBitopsPricesEachMacLayerAtItsInputBits) {
  const nn::Graph g = two_conv();
  std::vector<int> bits{4, 2, 8};  // input fm 4-bit, first conv out 2-bit
  const std::int64_t expected = g.macs(1) * 8 * 4 + g.macs(2) * 8 * 2;
  EXPECT_EQ(graph_bitops(g, bits, 8), expected);
}

TEST(BitOps, FullPrecisionUses32x32) {
  const nn::Graph g = two_conv();
  EXPECT_EQ(full_precision_bitops(g), g.total_macs() * 1024);
}

TEST(BitOps, ReductionCountsConsumersOfTheFeatureMap) {
  const nn::Graph g = two_conv();
  // Quantizing fm 1 to 4 bits cheapens conv 2 only.
  EXPECT_EQ(bitops_reduction(g, 1, 4, 8), g.macs(2) * (1024 - 32));
  // Quantizing the input fm cheapens conv 1 only.
  EXPECT_EQ(bitops_reduction(g, 0, 8, 8), g.macs(1) * (1024 - 64));
}

TEST(BitOps, Table2BaselineMagnitude) {
  // Paper Table II: MobileNetV2 8/8 baseline = 19.2 GBitOPs = ~300 MMACs.
  EXPECT_EQ(300'000'000LL * 8 * 8, 19'200'000'000LL);
}

TEST(Device, PresetsMatchPaperHardware) {
  const Device nano = arduino_nano_33_ble_sense();
  EXPECT_EQ(nano.sram_bytes, 256 * 1024);
  EXPECT_EQ(nano.flash_bytes, 1024 * 1024);
  const Device h7 = stm32h743();
  EXPECT_EQ(h7.sram_bytes, 512 * 1024);
  EXPECT_EQ(h7.flash_bytes, 2 * 1024 * 1024);
  EXPECT_GT(h7.clock_hz, nano.clock_hz);
}

TEST(CostModel, SubByteKernelsAreFasterButNotLinear) {
  const CostModel cm(arduino_nano_33_ble_sense());
  const double c8 = cm.mac_cycles(1'000'000, 8);
  const double c4 = cm.mac_cycles(1'000'000, 4);
  const double c2 = cm.mac_cycles(1'000'000, 2);
  EXPECT_LT(c4, c8);
  EXPECT_LT(c2, c4);
  // CMix-NN unpacking overhead: 4-bit is NOT a clean 2x speedup.
  EXPECT_GT(c4, c8 / 2.0);
  EXPECT_GT(c2, c8 / 4.0);
}

TEST(CostModel, RejectsNonDeployableBits) {
  const CostModel cm(arduino_nano_33_ble_sense());
  EXPECT_THROW((void)cm.mac_cycles(100, 3), std::invalid_argument);
  EXPECT_THROW((void)cm.mac_cycles(100, 16), std::invalid_argument);
}

TEST(CostModel, GraphCyclesSumLayers) {
  const nn::Graph g = two_conv();
  const CostModel cm(arduino_nano_33_ble_sense());
  const auto bits = nn::uniform_bits(g, 8);
  const double expected =
      cm.layer_cycles(g, 1, 8) + cm.layer_cycles(g, 2, 8);
  EXPECT_NEAR(cm.graph_cycles(g, bits), expected, 1e-6);
}

TEST(CostModel, LatencyScalesInverselyWithClock) {
  const nn::Graph g = two_conv();
  Device slow = arduino_nano_33_ble_sense();
  Device fast = slow;
  fast.clock_hz *= 2.0;
  const auto bits = nn::uniform_bits(g, 8);
  EXPECT_NEAR(CostModel(slow).graph_latency_ms(g, bits),
              2.0 * CostModel(fast).graph_latency_ms(g, bits), 1e-9);
}

TEST(CostModel, CalibratedLatencyMatchesTable1LayerBasedRow) {
  // Table I layer-based / ImageNet on the Nano: 1536 MBitOPs (24 MMACs) in
  // 617 ms. The calibrated constant must land within 15%.
  const CostModel cm(arduino_nano_33_ble_sense());
  const double ms =
      cm.device().ms_from_cycles(cm.mac_cycles(24'000'000, 8));
  EXPECT_NEAR(ms, 617.0, 617.0 * 0.15);
}

TEST(CostModel, ElementOpsCostLessThanMacs) {
  const CostModel cm(arduino_nano_33_ble_sense());
  EXPECT_LT(cm.element_cycles(1000), cm.mac_cycles(1000, 8) * 2.0);
}

}  // namespace
}  // namespace qmcu::mcu
