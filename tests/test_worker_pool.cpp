// WorkerPool (nn/runtime/worker_pool.h): the chunked work-stealing
// parallel_for must cover every index exactly once for any worker count,
// chunking and load shape; keep lane indices inside [0, W); run inline on
// one worker; and propagate body exceptions to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "nn/runtime/worker_pool.h"

namespace qmcu {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
  for (const int workers : {1, 2, 3, 4, 8}) {
    nn::WorkerPool pool(workers);
    for (const std::int64_t count : {0, 1, 3, 7, 64, 1000}) {
      for (const std::int64_t grain : {1, 2, 5, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
        for (auto& h : hits) h.store(0);
        pool.parallel_for(count, grain,
                          [&](std::int64_t b, std::int64_t e, int lane) {
                            ASSERT_GE(lane, 0);
                            ASSERT_LT(lane, pool.num_workers());
                            ASSERT_LE(b, e);
                            for (std::int64_t i = b; i < e; ++i) {
                              hits[static_cast<std::size_t>(i)].fetch_add(1);
                            }
                          });
        for (std::int64_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "index " << i << " workers " << workers << " grain "
              << grain;
        }
      }
    }
  }
}

TEST(WorkerPool, SingleWorkerRunsInlineOnCaller) {
  nn::WorkerPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(10, 3, [&](std::int64_t b, std::int64_t e, int lane) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls += static_cast<int>(e - b);
  });
  EXPECT_EQ(calls, 10);
}

TEST(WorkerPool, StealingBalancesSkewedLoads) {
  // One pathologically expensive chunk at the front of lane 0's deque: the
  // other lanes must steal the rest of lane 0's work instead of idling.
  nn::WorkerPool pool(4);
  if (pool.num_workers() < 2) GTEST_SKIP() << "needs >= 2 workers";
  std::mutex mu;
  std::set<int> lanes_seen;
  std::atomic<std::int64_t> done{0};
  pool.parallel_for(64, 1, [&](std::int64_t b, std::int64_t, int lane) {
    if (b == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      lanes_seen.insert(lane);
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
  // All chunks completed; on a multi-core host several lanes participate.
  // (On a single-core CI runner the OS may or may not schedule the helper
  // threads before the caller drains everything, so only assert coverage.)
  EXPECT_GE(static_cast<int>(lanes_seen.size()), 1);
}

TEST(WorkerPool, PropagatesBodyExceptions) {
  for (const int workers : {1, 4}) {
    nn::WorkerPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(16, 1,
                          [&](std::int64_t b, std::int64_t, int) {
                            if (b == 7) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must stay usable after a failed job.
    std::atomic<std::int64_t> n{0};
    pool.parallel_for(16, 1, [&](std::int64_t b, std::int64_t e, int) {
      n.fetch_add(e - b);
    });
    EXPECT_EQ(n.load(), 16);
  }
}

TEST(WorkerPool, BackToBackJobsReuseThreads) {
  nn::WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, 7, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(WorkerPool, ClampsWorkerCount) {
  nn::WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  EXPECT_GE(nn::WorkerPool::hardware_workers(), 1);
}

}  // namespace
}  // namespace qmcu
