// WorkerPool (nn/runtime/worker_pool.h): the chunked work-stealing
// parallel_for must cover every index exactly once for any worker count,
// chunking and load shape; keep lane indices inside [0, W); run inline on
// one worker; and propagate body exceptions to the caller. run_graph must
// respect dependency edges for every worker count, publish predecessor
// writes to successors, abort cleanly on task exceptions and reject
// cycles.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "nn/runtime/cpu_affinity.h"
#include "nn/runtime/worker_pool.h"

namespace qmcu {
namespace {

TEST(WorkerPool, CoversEveryIndexExactlyOnce) {
  for (const int workers : {1, 2, 3, 4, 8}) {
    nn::WorkerPool pool(workers);
    for (const std::int64_t count : {0, 1, 3, 7, 64, 1000}) {
      for (const std::int64_t grain : {1, 2, 5, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
        for (auto& h : hits) h.store(0);
        pool.parallel_for(count, grain,
                          [&](std::int64_t b, std::int64_t e, int lane) {
                            ASSERT_GE(lane, 0);
                            ASSERT_LT(lane, pool.num_workers());
                            ASSERT_LE(b, e);
                            for (std::int64_t i = b; i < e; ++i) {
                              hits[static_cast<std::size_t>(i)].fetch_add(1);
                            }
                          });
        for (std::int64_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
              << "index " << i << " workers " << workers << " grain "
              << grain;
        }
      }
    }
  }
}

TEST(WorkerPool, SingleWorkerRunsInlineOnCaller) {
  nn::WorkerPool pool(1);
  EXPECT_EQ(pool.num_workers(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  pool.parallel_for(10, 3, [&](std::int64_t b, std::int64_t e, int lane) {
    EXPECT_EQ(lane, 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    calls += static_cast<int>(e - b);
  });
  EXPECT_EQ(calls, 10);
}

TEST(WorkerPool, StealingBalancesSkewedLoads) {
  // One pathologically expensive chunk at the front of lane 0's deque: the
  // other lanes must steal the rest of lane 0's work instead of idling.
  nn::WorkerPool pool(4);
  if (pool.num_workers() < 2) GTEST_SKIP() << "needs >= 2 workers";
  std::mutex mu;
  std::set<int> lanes_seen;
  std::atomic<std::int64_t> done{0};
  pool.parallel_for(64, 1, [&](std::int64_t b, std::int64_t, int lane) {
    if (b == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      lanes_seen.insert(lane);
    }
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
  // All chunks completed; on a multi-core host several lanes participate.
  // (On a single-core CI runner the OS may or may not schedule the helper
  // threads before the caller drains everything, so only assert coverage.)
  EXPECT_GE(static_cast<int>(lanes_seen.size()), 1);
}

TEST(WorkerPool, PropagatesBodyExceptions) {
  for (const int workers : {1, 4}) {
    nn::WorkerPool pool(workers);
    EXPECT_THROW(
        pool.parallel_for(16, 1,
                          [&](std::int64_t b, std::int64_t, int) {
                            if (b == 7) throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // The pool must stay usable after a failed job.
    std::atomic<std::int64_t> n{0};
    pool.parallel_for(16, 1, [&](std::int64_t b, std::int64_t e, int) {
      n.fetch_add(e - b);
    });
    EXPECT_EQ(n.load(), 16);
  }
}

TEST(WorkerPool, BackToBackJobsReuseThreads) {
  nn::WorkerPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.parallel_for(100, 7, [&](std::int64_t b, std::int64_t e, int) {
      for (std::int64_t i = b; i < e; ++i) sum.fetch_add(i);
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(WorkerPool, ClampsWorkerCount) {
  nn::WorkerPool pool(0);
  EXPECT_EQ(pool.num_workers(), 1);
  EXPECT_GE(nn::WorkerPool::hardware_workers(), 1);
}

// --- task graphs -------------------------------------------------------------

TEST(TaskGraph, ChainRunsInDependencyOrder) {
  for (const int workers : {1, 2, 4}) {
    nn::WorkerPool pool(workers);
    nn::TaskGraph graph;
    std::vector<int> order;
    std::mutex mu;
    std::vector<int> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back(graph.add([&order, &mu, i](int) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      }));
      if (i > 0) graph.depend(tasks[static_cast<std::size_t>(i)],
                              tasks[static_cast<std::size_t>(i - 1)]);
    }
    pool.run_graph(graph);
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(TaskGraph, DiamondPublishesPredecessorWrites) {
  // a -> {b, c} -> d. b and c read what a wrote; d reads both — without
  // any synchronisation beyond the dependency edges.
  for (const int workers : {1, 2, 4, 8}) {
    nn::WorkerPool pool(workers);
    for (int round = 0; round < 20; ++round) {
      nn::TaskGraph graph;
      int x = 0, b_saw = 0, c_saw = 0, d_sum = 0;
      const int a = graph.add([&](int) { x = 41 + round; });
      const int b = graph.add([&](int) { b_saw = x + 1; });
      const int c = graph.add([&](int) { c_saw = x + 2; });
      const int d = graph.add([&](int) { d_sum = b_saw + c_saw; });
      graph.depend(b, a);
      graph.depend(c, a);
      graph.depend(d, b);
      graph.depend(d, c);
      pool.run_graph(graph);
      EXPECT_EQ(d_sum, 2 * (41 + round) + 3);
    }
  }
}

TEST(TaskGraph, WideFanRunsEveryTaskOnce) {
  nn::WorkerPool pool(4);
  nn::TaskGraph graph;
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  const int root = graph.add([](int) {});
  std::vector<int> mids;
  for (int i = 1; i < kTasks - 1; ++i) {
    const int t = graph.add([&hits, i](int lane) {
      EXPECT_GE(lane, 0);
      EXPECT_LT(lane, 4);
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    graph.depend(t, root);
    mids.push_back(t);
  }
  const int join = graph.add(
      [&hits](int) { hits[kTasks - 1].fetch_add(1); });
  for (const int t : mids) graph.depend(join, t);
  hits[0].fetch_add(1);  // stands in for the root
  pool.run_graph(graph);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  }
}

TEST(TaskGraph, ExceptionAbortsAndPoolStaysUsable) {
  for (const int workers : {1, 4}) {
    nn::WorkerPool pool(workers);
    nn::TaskGraph graph;
    std::atomic<bool> downstream_ran{false};
    const int boom = graph.add(
        [](int) { throw std::runtime_error("boom"); });
    const int after = graph.add(
        [&](int) { downstream_ran.store(true); });
    graph.depend(after, boom);
    EXPECT_THROW(pool.run_graph(graph), std::runtime_error);
    EXPECT_FALSE(downstream_ran.load())
        << "successors of a failed task must not run";
    // The pool must come back clean for the next job.
    std::atomic<std::int64_t> n{0};
    pool.parallel_for(16, 1, [&](std::int64_t b, std::int64_t e, int) {
      n.fetch_add(e - b);
    });
    EXPECT_EQ(n.load(), 16);
  }
}

TEST(TaskGraph, RejectsCycles) {
  for (const int workers : {1, 2}) {
    nn::WorkerPool pool(workers);
    nn::TaskGraph graph;
    const int a = graph.add([](int) {});
    const int b = graph.add([](int) {});
    const int c = graph.add([](int) {});  // keeps one task ready
    (void)c;
    graph.depend(a, b);
    graph.depend(b, a);
    EXPECT_THROW(pool.run_graph(graph), std::exception);
  }
}

TEST(TaskGraph, GraphsReuseThePoolBackToBack) {
  nn::WorkerPool pool(3);
  for (int round = 0; round < 30; ++round) {
    nn::TaskGraph graph;
    std::atomic<int> sum{0};
    std::vector<int> layer1;
    for (int i = 0; i < 6; ++i) {
      layer1.push_back(graph.add([&sum](int) { sum.fetch_add(1); }));
    }
    const int join = graph.add([&sum](int) { sum.fetch_add(100); });
    for (const int t : layer1) graph.depend(join, t);
    pool.run_graph(graph);
    EXPECT_EQ(sum.load(), 106);
  }
}

TEST(WorkerPool, ParallelRangesCoversCallerChunks) {
  for (const int workers : {1, 3}) {
    nn::WorkerPool pool(workers);
    const std::vector<nn::IndexRange> ranges = {
        {0, 3}, {3, 4}, {4, 10}, {10, 11}};
    std::vector<std::atomic<int>> hits(11);
    for (auto& h : hits) h.store(0);
    pool.parallel_ranges(ranges,
                         [&](std::int64_t b, std::int64_t e, int) {
                           for (std::int64_t i = b; i < e; ++i) {
                             hits[static_cast<std::size_t>(i)].fetch_add(1);
                           }
                         });
    for (int i = 0; i < 11; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

// pin_workers is best-effort by contract: on a platform with affinity it
// pins every pool thread and reports true; anywhere else (or with an empty
// cpu list) it reports false — and in no case does it change what the pool
// computes.
TEST(WorkerPool, PinWorkersIsBestEffortAndPreservesResults) {
  nn::WorkerPool pool(2);
  const std::vector<int> cpu0 = {0};
  if (nn::runtime::affinity_supported()) {
    EXPECT_TRUE(pool.pin_workers(cpu0));
  } else {
    EXPECT_FALSE(pool.pin_workers(cpu0));
  }
  EXPECT_FALSE(pool.pin_workers({}));  // nothing to pin to

  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(100, 1, [&](std::int64_t b, std::int64_t e, int) {
    for (std::int64_t i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(CpuAffinity, PinCurrentThreadMatchesPlatformSupport) {
  EXPECT_GE(nn::runtime::usable_cpus(), 1);
  // Out-of-range and empty cpu lists are always refused.
  EXPECT_FALSE(nn::runtime::pin_current_thread({}));
  const std::vector<int> bogus = {1 << 20};
  EXPECT_FALSE(nn::runtime::pin_current_thread(bogus));
  const std::vector<int> cpu0 = {0};
  EXPECT_EQ(nn::runtime::pin_current_thread(cpu0),
            nn::runtime::affinity_supported());
}

}  // namespace
}  // namespace qmcu
