// ServingFrontend (nn/serving/serving_frontend.h) + CoreBudget: the
// fleet-scale serving front-end must (a) partition the core budget so
// sessions x workers never oversubscribe it, (b) serve results
// bit-identical to a lone sequential model through every path (pool-run,
// degraded, batch-spread), and (c) shed load explicitly — queue-full
// submissions are rejected at admission, expired requests get a distinct
// error and are never started, and Downgrade trades intra-request
// parallelism before anything else. Fake models with gates/latches make
// the shed paths deterministic; a real compiled patch model covers the
// bit-exactness contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "nn/rng.h"
#include "nn/runtime/cpu_affinity.h"
#include "nn/serving/serving_frontend.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

using nn::serving::CoreBudget;
using nn::serving::DeadlineExceededError;
using nn::serving::RejectedError;
using nn::serving::ServingConfig;
using nn::serving::ServingFrontend;
using nn::serving::ShedPolicy;

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// A tensor whose first element tags it, so batch-order checks can map
// outputs back to inputs.
nn::Tensor tagged_input(float tag) {
  nn::Tensor t(nn::TensorShape{1, 1, 4});
  t.data()[0] = tag;
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

// A manually-released barrier; serving threads block in wait(), the test
// thread observes how many are parked and releases them. Every test path
// MUST release before the frontend is destroyed (EXPECT over ASSERT in
// gated scopes keeps teardown reachable).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool open = false;
  int waiters = 0;

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    ++waiters;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  // True once `n` threads are parked in wait() (10 s timeout).
  bool await_waiters(int n) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return waiters >= n; });
  }
};

// Echoes its input; optionally parks on a gate first.
struct EchoModel {
  std::shared_ptr<Gate> gate;
  nn::Tensor run(const nn::Tensor& in) const {
    if (gate) gate->wait();
    return in;
  }
};

// Pool-runnable fake: records which entry point served each request, so
// the Downgrade policy's choice is observable.
struct PoolPathCounters {
  std::atomic<int> pool_runs{0};
  std::atomic<int> seq_runs{0};
};
struct FakePoolModel {
  std::shared_ptr<Gate> gate;
  std::shared_ptr<PoolPathCounters> counters;
  nn::Tensor run(const nn::Tensor& in) const {
    if (gate) gate->wait();
    counters->seq_runs.fetch_add(1);
    return in;
  }
  nn::Tensor run(const nn::Tensor& in, nn::WorkerPool*) const {
    if (gate) gate->wait();
    counters->pool_runs.fetch_add(1);
    return in;
  }
};

// Blocks every run until `expected` lanes have entered one — proves chunks
// of one batch really execute on that many lanes concurrently. Times out
// (throwing, which fails the future loudly) instead of hanging.
struct RendezvousModel {
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    int arrivals = 0;
  };
  std::shared_ptr<State> state;
  int expected = 0;

  nn::Tensor run(const nn::Tensor& in) const {
    std::unique_lock<std::mutex> lock(state->mu);
    ++state->arrivals;
    state->cv.notify_all();
    if (!state->cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return state->arrivals >= expected; })) {
      throw std::runtime_error("rendezvous timed out: batch did not spread");
    }
    return in;
  }
};

TEST(CoreBudget, PartitionRespectsTheBudget) {
  const CoreBudget even = CoreBudget::partition(2, 8);
  EXPECT_EQ(even.workers_per_session, 4);
  EXPECT_EQ(even.threads(), 8);

  const CoreBudget uneven = CoreBudget::partition(3, 8);
  EXPECT_EQ(uneven.workers_per_session, 2);
  EXPECT_LE(uneven.threads(), 8);

  // More lanes than cores: single-worker lanes time-sharing cores.
  const CoreBudget oversub = CoreBudget::partition(8, 4);
  EXPECT_EQ(oversub.workers_per_session, 1);
  EXPECT_EQ(oversub.threads(), 8);
  for (int lane = 0; lane < 8; ++lane) {
    const auto cpus = oversub.lane_cpus(lane);
    ASSERT_EQ(cpus.size(), 1u);
    EXPECT_EQ(cpus[0], lane % 4);
  }

  // Detected budget is always >= 1 and internally consistent.
  const CoreBudget detected = CoreBudget::partition(2, 0);
  EXPECT_GE(detected.total_cores, 1);
  EXPECT_GE(detected.workers_per_session, 1);
  EXPECT_LE(detected.sessions * detected.workers_per_session,
            std::max(detected.total_cores, detected.sessions));
}

TEST(CoreBudget, LaneCpusAreDisjointAndCoverTheBudget) {
  for (const auto& [sessions, cores] : std::vector<std::pair<int, int>>{
           {2, 8}, {3, 8}, {4, 4}, {1, 6}}) {
    const CoreBudget b = CoreBudget::partition(sessions, cores);
    std::set<int> seen;
    for (int lane = 0; lane < sessions; ++lane) {
      for (const int c : b.lane_cpus(lane)) {
        EXPECT_GE(c, 0);
        EXPECT_LT(c, cores);
        // Disjoint: no cpu appears in two lanes' slices.
        EXPECT_TRUE(seen.insert(c).second)
            << "cpu " << c << " assigned twice (" << sessions << " lanes, "
            << cores << " cores)";
      }
    }
    // Every core is some lane's (workers + remainder slack).
    EXPECT_EQ(static_cast<int>(seen.size()), cores);
  }
}

// The bit-exactness contract end to end: a front-end with intra-request
// slices (forced core budget 4 over 2 lanes -> 2-worker pools even on a
// 1-core host), pinning on, slab-leased arenas — every completed result
// identical to the lone sequential model.
TEST(ServingFrontend, PatchModelBitExactVsSequential) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 1)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, cfg);
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchQuantModel reference(g, plan, cfg, {},
                                                 nn::ops::KernelTier::Simd,
                                                 params);

  ServingConfig scfg;
  scfg.sessions = 2;
  scfg.core_budget = 4;  // forces 2-worker slices regardless of host
  scfg.pin_lanes = true;
  using Frontend = ServingFrontend<patch::CompiledPatchQuantModel>;
  static_assert(Frontend::kPoolRunnable);
  Frontend frontend(
      scfg, [&](int, const std::shared_ptr<nn::ArenaSlab>& slab) {
        auto model = std::make_unique<patch::CompiledPatchQuantModel>(
            g, plan, cfg, std::vector<patch::BranchQuantConfig>{},
            nn::ops::KernelTier::Simd, params);
        model->set_arena_source(slab);
        return model;
      });
  EXPECT_EQ(frontend.budget().workers_per_session, 2);

  std::vector<nn::Tensor> inputs;
  std::vector<nn::QTensor> expected;
  for (std::uint64_t seed = 2; seed < 8; ++seed) {
    inputs.push_back(random_input(g.shape(0), seed));
    expected.push_back(reference.run(inputs.back()));
  }
  std::vector<std::future<nn::QTensor>> futures;
  for (const nn::Tensor& in : inputs) futures.push_back(frontend.submit(in));
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const nn::QTensor got = futures[i].get();
    ASSERT_EQ(got.shape(), expected[i].shape());
    for (std::size_t j = 0; j < got.data().size(); ++j) {
      ASSERT_EQ(static_cast<int>(got.data()[j]),
                static_cast<int>(expected[i].data()[j]))
          << "request " << i << " element " << j;
    }
  }
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.completed, inputs.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(frontend.slab()->outstanding_leases(), 0);
}

TEST(ServingFrontend, RejectsWhenAdmissionQueueIsFull) {
  auto gate = std::make_shared<Gate>();
  ServingConfig cfg;
  cfg.sessions = 1;
  cfg.core_budget = 1;
  cfg.pin_lanes = false;
  cfg.max_queue_depth = 2;
  ServingFrontend<EchoModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<EchoModel>(EchoModel{gate});
      });

  // One in flight (parked on the gate), two queued, then the bound bites.
  auto in_flight = frontend.submit(tagged_input(0.0f));
  EXPECT_TRUE(gate->await_waiters(1));
  auto queued_a = frontend.submit(tagged_input(1.0f));
  auto queued_b = frontend.submit(tagged_input(2.0f));
  auto shed_a = frontend.submit(tagged_input(3.0f));
  auto shed_b = frontend.submit(tagged_input(4.0f));

  // Rejections resolve immediately — no waiting on the gate.
  EXPECT_THROW(shed_a.get(), RejectedError);
  EXPECT_THROW(shed_b.get(), RejectedError);
  EXPECT_EQ(frontend.stats().rejected, 2u);

  gate->release();
  EXPECT_EQ(in_flight.get().data()[0], 0.0f);
  EXPECT_EQ(queued_a.get().data()[0], 1.0f);
  EXPECT_EQ(queued_b.get().data()[0], 2.0f);
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 2u);
  EXPECT_EQ(stats.expired, 0u);
}

TEST(ServingFrontend, ExpiredRequestGetsDistinctErrorAndNeverRuns) {
  ServingConfig cfg;
  cfg.sessions = 1;
  cfg.core_budget = 1;
  cfg.pin_lanes = false;
  ServingFrontend<EchoModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<EchoModel>();
      });

  // A deadline already in the past: the request is shed at pop, the model
  // never runs, and the error is the distinct deadline type (not a result,
  // not a generic failure).
  const auto past =
      ServingFrontend<EchoModel>::Clock::now() - std::chrono::milliseconds(1);
  auto expired = frontend.submit(tagged_input(7.0f), past);
  EXPECT_THROW(expired.get(), DeadlineExceededError);
  EXPECT_EQ(frontend.stats().expired, 1u);
  EXPECT_EQ(frontend.stats().completed, 0u);

  // The lane stays serviceable.
  auto ok = frontend.submit(tagged_input(8.0f));
  EXPECT_EQ(ok.get().data()[0], 8.0f);
  EXPECT_EQ(frontend.stats().completed, 1u);

  // A generous deadline admits normally.
  auto fine = frontend.submit(
      tagged_input(9.0f),
      ServingFrontend<EchoModel>::Clock::now() + std::chrono::seconds(30));
  EXPECT_EQ(fine.get().data()[0], 9.0f);
}

TEST(ServingFrontend, DowngradeShedsIntraRequestParallelismFirst) {
  auto gate = std::make_shared<Gate>();
  auto counters = std::make_shared<PoolPathCounters>();
  ServingConfig cfg;
  cfg.sessions = 1;
  cfg.core_budget = 2;  // 2-worker slice -> the pool path exists
  cfg.pin_lanes = false;
  cfg.policy = ShedPolicy::Downgrade;
  cfg.shed_queue_depth = 2;
  cfg.max_queue_depth = 8;
  ServingFrontend<FakePoolModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<FakePoolModel>(FakePoolModel{gate, counters});
      });

  // First request pops with an empty backlog -> full pool path; it parks
  // on the gate while four more queue up behind it.
  auto first = frontend.submit(tagged_input(0.0f));
  EXPECT_TRUE(gate->await_waiters(1));
  std::vector<std::future<nn::Tensor>> rest;
  for (int i = 1; i <= 4; ++i) rest.push_back(frontend.submit(tagged_input(i)));

  gate->release();
  (void)first.get();
  for (auto& f : rest) (void)f.get();

  // Pop order is deterministic on one lane: backlog depths seen are
  // 4, 3 (>= shed -> degraded sequential), then 1, 0 (pool path again).
  EXPECT_EQ(counters->seq_runs.load(), 2);
  EXPECT_EQ(counters->pool_runs.load(), 3);
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.degraded, 2u);
}

TEST(ServingFrontend, BatchSpreadsAcrossIdleSessions) {
  constexpr int kSessions = 4;
  auto state = std::make_shared<RendezvousModel::State>();
  ServingConfig cfg;
  cfg.sessions = kSessions;
  cfg.core_budget = kSessions;  // 1-worker lanes
  cfg.pin_lanes = false;
  ServingFrontend<RendezvousModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<RendezvousModel>(
            RendezvousModel{state, kSessions});
      });

  // 8 inputs -> 4 chunks of 2; every chunk must land on its own lane for
  // the rendezvous to open (RendezvousModel throws after 10 s otherwise —
  // a SessionPool-style single-entry batch would deadlock here, which is
  // exactly the serialization this API removes).
  std::vector<nn::Tensor> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(tagged_input(i));
  auto futures = frontend.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 8u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    // Futures stay in input order through the spread.
    EXPECT_EQ(futures[i].get().data()[0], static_cast<float>(i));
  }
  const auto per_lane = frontend.per_session_requests();
  int lanes_used = 0;
  std::uint64_t total = 0;
  for (const auto n : per_lane) {
    lanes_used += n > 0 ? 1 : 0;
    total += n;
  }
  EXPECT_EQ(lanes_used, kSessions);
  EXPECT_EQ(total, 8u);
  EXPECT_TRUE(frontend.submit_batch({}).empty());
}

TEST(ServingFrontend, BatchChunksShedWholeWhenQueueIsFull) {
  auto gate = std::make_shared<Gate>();
  ServingConfig cfg;
  cfg.sessions = 2;
  cfg.core_budget = 2;
  cfg.pin_lanes = false;
  cfg.max_queue_depth = 1;
  ServingFrontend<EchoModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<EchoModel>(EchoModel{gate});
      });

  // Park both lanes one at a time (with a queue bound of one, submitting
  // the second before the first is popped would shed it instead).
  auto busy_a = frontend.submit(tagged_input(100.0f));
  EXPECT_TRUE(gate->await_waiters(1));
  auto busy_b = frontend.submit(tagged_input(101.0f));
  EXPECT_TRUE(gate->await_waiters(2));

  // 4 inputs over 2 lanes -> chunks [0,2) and [2,4): the first chunk
  // takes the one queue slot, the second is rejected whole.
  std::vector<nn::Tensor> batch;
  for (int i = 0; i < 4; ++i) batch.push_back(tagged_input(i));
  auto futures = frontend.submit_batch(std::move(batch));
  ASSERT_EQ(futures.size(), 4u);
  EXPECT_THROW(futures[2].get(), RejectedError);
  EXPECT_THROW(futures[3].get(), RejectedError);

  gate->release();
  EXPECT_EQ(futures[0].get().data()[0], 0.0f);
  EXPECT_EQ(futures[1].get().data()[0], 1.0f);
  (void)busy_a.get();
  (void)busy_b.get();
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.rejected, 2u);
}

TEST(ServingFrontend, LatencyRecordingSamplesCompletedRequests) {
  ServingConfig cfg;
  cfg.sessions = 1;
  cfg.core_budget = 1;
  cfg.pin_lanes = false;
  ServingFrontend<EchoModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<EchoModel>();
      });
  frontend.enable_latency_recording();
  for (int i = 0; i < 5; ++i) (void)frontend.run(tagged_input(i));
  const auto samples = frontend.take_latencies_ms();
  EXPECT_EQ(samples.size(), 5u);
  for (const double ms : samples) EXPECT_GE(ms, 0.0);
  EXPECT_TRUE(frontend.take_latencies_ms().empty());
}

// Stress: concurrent submitters against gated admission — the accounting
// must balance exactly (completed + rejected == submitted) and teardown
// must be clean with shed futures outstanding.
TEST(ServingFrontend, AccountingBalancesUnderConcurrentSubmitters) {
  ServingConfig cfg;
  cfg.sessions = 2;
  cfg.core_budget = 2;
  cfg.pin_lanes = false;
  cfg.max_queue_depth = 4;
  ServingFrontend<EchoModel> frontend(
      cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return std::make_unique<EchoModel>();
      });

  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 32;
  std::atomic<int> completed{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerSubmitter; ++i) {
        auto f = frontend.submit(tagged_input(t * 100 + i));
        try {
          (void)f.get();
          completed.fetch_add(1);
        } catch (const RejectedError&) {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  EXPECT_EQ(completed.load() + rejected.load(), kSubmitters * kPerSubmitter);
  const auto stats = frontend.stats();
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(completed.load()));
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(rejected.load()));
  EXPECT_EQ(stats.pending, 0u);
}

}  // namespace
}  // namespace qmcu
