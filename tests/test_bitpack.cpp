// Unit tests for sub-byte bit packing (quant/bitpack.h).
#include <gtest/gtest.h>

#include "nn/rng.h"
#include "quant/bitpack.h"

namespace qmcu::quant {
namespace {

class BitpackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitpackRoundTrip, AllInRangeValuesSurvive) {
  const int bits = GetParam();
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  std::vector<std::int8_t> values;
  for (std::int32_t v = lo; v <= hi; ++v) {
    values.push_back(static_cast<std::int8_t>(v));
  }
  const auto packed = pack(values, bits);
  const auto back =
      unpack(packed, static_cast<std::int64_t>(values.size()), bits);
  EXPECT_EQ(back, values);
}

TEST_P(BitpackRoundTrip, RandomStreamsSurvive) {
  const int bits = GetParam();
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  nn::Rng rng(42);
  std::vector<std::int8_t> values(1000);
  for (auto& v : values) {
    v = static_cast<std::int8_t>(
        lo + static_cast<std::int32_t>(rng.uniform() * (hi - lo + 1)));
  }
  const auto packed = pack(values, bits);
  const auto back = unpack(packed, 1000, bits);
  EXPECT_EQ(back, values);
}

TEST_P(BitpackRoundTrip, PackedSizeIsExact) {
  const int bits = GetParam();
  EXPECT_EQ(packed_size_bytes(8, bits), bits);  // 8 elems * bits / 8
  // Odd counts round up.
  EXPECT_EQ(packed_size_bytes(9, bits), (9 * bits + 7) / 8);
}

INSTANTIATE_TEST_SUITE_P(AllFieldWidths, BitpackRoundTrip,
                         ::testing::Values(2, 4, 8));

TEST(Bitpack, CompressionRatioVsInt8) {
  std::vector<std::int8_t> values(64, 1);
  EXPECT_EQ(pack(values, 4).size(), 32u);
  EXPECT_EQ(pack(values, 2).size(), 16u);
}

TEST(Bitpack, RejectsOutOfRangeValue) {
  std::vector<std::int8_t> values{8};  // int4 range is [-8, 7]
  EXPECT_THROW(pack(values, 4), std::invalid_argument);
}

TEST(Bitpack, RejectsUnsupportedWidth) {
  std::vector<std::int8_t> values{0};
  EXPECT_THROW(pack(values, 3), std::invalid_argument);
  EXPECT_THROW(unpack({}, 0, 5), std::invalid_argument);
}

TEST(Bitpack, RejectsShortBuffer) {
  std::vector<std::uint8_t> packed{0x00};
  EXPECT_THROW(unpack(packed, 9, 4), std::invalid_argument);
}

TEST(Bitpack, FirstElementInLeastSignificantField) {
  std::vector<std::int8_t> values{1, 2};
  const auto packed = pack(values, 4);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0x21);  // elem0 = low nibble
}

TEST(Bitpack, NegativeValuesSignExtendCorrectly) {
  std::vector<std::int8_t> values{-1, -8, 7, 0};
  const auto back = unpack(pack(values, 4), 4, 4);
  EXPECT_EQ(back, values);
}

}  // namespace
}  // namespace qmcu::quant
