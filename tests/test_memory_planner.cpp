// Tests for the arena memory planner (nn/memory_planner.h).
#include <gtest/gtest.h>

#include "nn/memory_planner.h"

namespace qmcu::nn {
namespace {

TEST(MemoryPlanner, ChainPeakIsAdjacentPair) {
  Graph g("chain");
  const int in = g.add_input(TensorShape{8, 8, 4});    // 256 B at int8
  const int a = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);  // 1024 B
  const int b = g.add_conv2d(a, 2, 3, 2, 1, Activation::ReLU);    // 32 B
  g.add_global_avg_pool(b);
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  // Peak while running `a`: input (256) + a's output (1024).
  EXPECT_EQ(plan.peak_bytes, 256 + 1024);
  EXPECT_EQ(plan.peak_step, a);
}

TEST(MemoryPlanner, ResidualKeepsSkipTensorAlive) {
  Graph g("res");
  const int in = g.add_input(TensorShape{8, 8, 8});  // 512 B
  const int a = g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);  // 512 B
  const int b = g.add_conv2d(a, 8, 3, 1, 1, Activation::None);   // 512 B
  g.add_residual_add(in, b, Activation::ReLU);  // consumes `in` again
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  // While running b: in (skip, still live) + a + b = 1536.
  EXPECT_EQ(plan.peak_bytes, 512 * 3);
}

TEST(MemoryPlanner, WithoutSkipTensorIsFreedEarlier) {
  Graph g("chain");
  const int in = g.add_input(TensorShape{8, 8, 8});
  const int a = g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 8, 3, 1, 1, Activation::None);
  g.add_conv2d(b, 8, 3, 1, 1, Activation::None);
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  EXPECT_EQ(plan.peak_bytes, 512 * 2);  // only producer+consumer pairs
}

TEST(MemoryPlanner, SubByteBitsShrinkFootprint) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 8});
  g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);
  const auto p8 = plan_layer_based(g, uniform_bits(g, 8));
  const auto p4 = plan_layer_based(g, uniform_bits(g, 4));
  const auto p2 = plan_layer_based(g, uniform_bits(g, 2));
  EXPECT_EQ(p4.peak_bytes * 2, p8.peak_bytes);
  EXPECT_EQ(p2.peak_bytes * 4, p8.peak_bytes);
}

TEST(MemoryPlanner, MixedBitsPriceEachTensorSeparately) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 8});  // layer 0
  g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);    // layer 1
  std::vector<int> bits{4, 8};
  const auto plan = plan_layer_based(g, bits);
  EXPECT_EQ(plan.peak_bytes, 512 / 2 + 512);
}

TEST(MemoryPlanner, LastUseStepFollowsConsumers) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 4, 3, 1, 1, Activation::ReLU);
  const int c = g.add_residual_add(a, b, Activation::None);
  EXPECT_EQ(last_use_step(g, in), a);
  EXPECT_EQ(last_use_step(g, a), c);  // kept alive by the residual
  EXPECT_EQ(last_use_step(g, c), c);  // unconsumed output
}

TEST(MemoryPlanner, StepBytesHasOneEntryPerLayer) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  g.add_conv2d(in, 2, 1, 1, 0, Activation::None);
  const auto plan = plan_layer_based(g, uniform_bits(g, 8));
  EXPECT_EQ(static_cast<int>(plan.step_bytes.size()), g.size());
}

TEST(MemoryPlanner, FlashBytesCountWeightsAndBias) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  g.add_conv2d(in, 3, 1, 1, 0, Activation::None);  // 6 weights + 3 biases
  EXPECT_EQ(model_flash_bytes(g, 8), 6 + 3 * 4);
  EXPECT_EQ(model_flash_bytes(g, 4), 3 + 3 * 4);
}

TEST(MemoryPlanner, RejectsMismatchedBitsVector) {
  Graph g("t");
  g.add_input(TensorShape{4, 4, 2});
  const std::vector<int> wrong{8, 8, 8};
  EXPECT_THROW(plan_layer_based(g, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::nn
