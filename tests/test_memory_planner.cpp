// Tests for the arena memory planner (nn/memory_planner.h).
#include <gtest/gtest.h>

#include <cstdlib>

#include "models/weights.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/ops/int8_kernels.h"

namespace qmcu::nn {
namespace {

TEST(MemoryPlanner, ChainPeakIsAdjacentPair) {
  Graph g("chain");
  const int in = g.add_input(TensorShape{8, 8, 4});    // 256 B at int8
  const int a = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);  // 1024 B
  const int b = g.add_conv2d(a, 2, 3, 2, 1, Activation::ReLU);    // 32 B
  g.add_global_avg_pool(b);
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  // Peak while running `a`: input (256) + a's output (1024).
  EXPECT_EQ(plan.peak_bytes, 256 + 1024);
  EXPECT_EQ(plan.peak_step, a);
}

TEST(MemoryPlanner, ResidualKeepsSkipTensorAlive) {
  Graph g("res");
  const int in = g.add_input(TensorShape{8, 8, 8});  // 512 B
  const int a = g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);  // 512 B
  const int b = g.add_conv2d(a, 8, 3, 1, 1, Activation::None);   // 512 B
  g.add_residual_add(in, b, Activation::ReLU);  // consumes `in` again
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  // While running b: in (skip, still live) + a + b = 1536.
  EXPECT_EQ(plan.peak_bytes, 512 * 3);
}

TEST(MemoryPlanner, WithoutSkipTensorIsFreedEarlier) {
  Graph g("chain");
  const int in = g.add_input(TensorShape{8, 8, 8});
  const int a = g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 8, 3, 1, 1, Activation::None);
  g.add_conv2d(b, 8, 3, 1, 1, Activation::None);
  const MemoryPlan plan = plan_layer_based(g, uniform_bits(g, 8));
  EXPECT_EQ(plan.peak_bytes, 512 * 2);  // only producer+consumer pairs
}

TEST(MemoryPlanner, SubByteBitsShrinkFootprint) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 8});
  g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);
  const auto p8 = plan_layer_based(g, uniform_bits(g, 8));
  const auto p4 = plan_layer_based(g, uniform_bits(g, 4));
  const auto p2 = plan_layer_based(g, uniform_bits(g, 2));
  EXPECT_EQ(p4.peak_bytes * 2, p8.peak_bytes);
  EXPECT_EQ(p2.peak_bytes * 4, p8.peak_bytes);
}

TEST(MemoryPlanner, MixedBitsPriceEachTensorSeparately) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 8});  // layer 0
  g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);    // layer 1
  std::vector<int> bits{4, 8};
  const auto plan = plan_layer_based(g, bits);
  EXPECT_EQ(plan.peak_bytes, 512 / 2 + 512);
}

TEST(MemoryPlanner, LastUseStepFollowsConsumers) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 4, 3, 1, 1, Activation::ReLU);
  const int c = g.add_residual_add(a, b, Activation::None);
  EXPECT_EQ(last_use_step(g, in), a);
  EXPECT_EQ(last_use_step(g, a), c);  // kept alive by the residual
  EXPECT_EQ(last_use_step(g, c), c);  // unconsumed output
}

TEST(MemoryPlanner, StepBytesHasOneEntryPerLayer) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  g.add_conv2d(in, 2, 1, 1, 0, Activation::None);
  const auto plan = plan_layer_based(g, uniform_bits(g, 8));
  EXPECT_EQ(static_cast<int>(plan.step_bytes.size()), g.size());
}

TEST(MemoryPlanner, FlashBytesCountWeightsAndBias) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  g.add_conv2d(in, 3, 1, 1, 0, Activation::None);  // 6 weights + 3 biases
  EXPECT_EQ(model_flash_bytes(g, 8), 6 + 3 * 4);
  EXPECT_EQ(model_flash_bytes(g, 4), 3 + 3 * 4);
}

TEST(MemoryPlanner, RejectsMismatchedBitsVector) {
  Graph g("t");
  g.add_input(TensorShape{4, 4, 2});
  const std::vector<int> wrong{8, 8, 8};
  EXPECT_THROW(plan_layer_based(g, wrong), std::invalid_argument);
}

TEST(MemoryPlanner, AccountsFastBackendScratch) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int conv = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);
  g.add_depthwise_conv2d(conv, 3, 1, 1, Activation::ReLU);
  const auto plan = plan_layer_based(g, uniform_bits(g, 8));

  // Conv scratch: k-major panel (n*k) + im2col strip (out_w*k) + int32
  // wsum/offset/accumulators (6n words).
  const std::int64_t k = 3 * 3 * 4;
  const std::int64_t expect_conv = 16 * k + 8 * k + (16 + 16 + 4 * 16) * 4;
  EXPECT_EQ(plan.step_scratch_bytes[static_cast<std::size_t>(conv)],
            expect_conv);
  EXPECT_EQ(fast_scratch_bytes(g, conv), expect_conv);
  // Depthwise scratch: per-channel int32 accumulators.
  EXPECT_EQ(plan.step_scratch_bytes[2], 16 * 4);
  EXPECT_EQ(plan.scratch_peak_bytes, expect_conv);
  // The honest arena peak includes the scratch live at the peak step.
  EXPECT_GE(plan.total_peak_bytes, plan.peak_bytes);
  EXPECT_EQ(plan.total_peak_bytes,
            plan.step_bytes[static_cast<std::size_t>(conv)] + expect_conv);
  // Resident panel bytes: bt + wsum of the single Conv2D.
  EXPECT_EQ(plan.panel_bytes, 16 * k + 16 * 4);
  EXPECT_EQ(fast_panel_bytes(g, conv), 16 * k + 16 * 4);
}

TEST(MemoryPlanner, ScratchModelMatchesMeasuredBackendFootprint) {
  // The planner's per-layer scratch estimate hand-mirrors the Fast
  // backend's layout; this pins the two together: after one conv on a
  // fresh uncached-panel backend, the ScratchArena's measured footprint
  // must equal fast_scratch_bytes exactly.
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int conv = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);
  models::init_parameters(g, 5);

  ops::KernelBackend backend(ops::KernelTier::Fast,
                             /*cache_weight_panels=*/false);
  const QuantParams in_p = choose_quant_params(-1.0f, 1.0f, 8);
  const QuantParams out_p = choose_quant_params(-2.0f, 2.0f, 8);
  const QTensor qin(g.shape(in), in_p);
  const ops::QuantizedWeights qw = ops::quantize_weights(g.weights(conv));
  (void)backend.conv2d(qin, g.layer(conv), qw.data, qw.params, {}, out_p);
  EXPECT_EQ(static_cast<std::int64_t>(backend.arena().footprint_bytes()),
            fast_scratch_bytes(g, conv));
}

TEST(MemoryPlanner, ScratchModelMatchesMeasuredLutBackendFootprint) {
  // Sub-byte twin of the test above: with the LUT tier forced on, the
  // uncached backend builds its lookup tables inside the scratch arena, and
  // the bits-aware fast_scratch_bytes must equal the measured footprint.
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int conv = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);
  models::init_parameters(g, 5);

  ::setenv("QMCU_FORCE_LUT", "1", 1);
  ops::KernelBackend backend(ops::KernelTier::Fast,
                             /*cache_weight_panels=*/false);
  const QuantParams in_p = choose_quant_params(-1.0f, 1.0f, 4);
  const QuantParams out_p = choose_quant_params(-2.0f, 2.0f, 8);
  const QTensor qin(g.shape(in), in_p);
  const ops::QuantizedWeights qw = ops::quantize_weights(g.weights(conv));
  (void)backend.conv2d(qin, g.layer(conv), qw.data, qw.params, {}, out_p);
  EXPECT_EQ(static_cast<std::int64_t>(backend.arena().footprint_bytes()),
            fast_scratch_bytes(g, conv, /*in_act_bits=*/4));
  // The LUT tables dominate: the forced sub-byte bound strictly exceeds
  // int8's GEMM bound.
  EXPECT_GT(fast_scratch_bytes(g, conv, 4), fast_scratch_bytes(g, conv));
  // Pin Auto mode (an ambient QMCU_NO_LUT would change what is asserted):
  // Auto keeps 4-bit conv on the GEMM path (lut_planned), so the planner
  // prices no tables for it — while the 2-bit recode, which Auto does
  // run, is still priced.
  ::unsetenv("QMCU_FORCE_LUT");
  ::unsetenv("QMCU_NO_LUT");
  EXPECT_EQ(fast_scratch_bytes(g, conv, 4), fast_scratch_bytes(g, conv));
  // Pin the pair-madd generation: on dot-capable hosts Auto skips the
  // 2-bit LUT entirely (the dot GEMM outruns it), so no tables are priced
  // and the 2-bit bound would equal int8's.
  ::setenv("QMCU_FORCE_NO_DOT", "1", 1);
  EXPECT_GT(fast_scratch_bytes(g, conv, 2), fast_scratch_bytes(g, conv));
  ::unsetenv("QMCU_FORCE_NO_DOT");
}

TEST(MemoryPlanner, ScratchCoversSoftmaxFloatDetour) {
  Graph g("t");
  const int in = g.add_input(TensorShape{1, 1, 10});
  const int fc = g.add_fully_connected(in, 10, Activation::None);
  const int sm = g.add_softmax(fc);
  const auto plan = plan_layer_based(g, uniform_bits(g, 8));
  // fc scratch: uncached k-major panel (n*k) + wsum/offset/acc (3n words).
  EXPECT_EQ(plan.step_scratch_bytes[static_cast<std::size_t>(fc)],
            10 * 10 + (10 + 10 + 10) * 4);
  EXPECT_EQ(plan.step_scratch_bytes[static_cast<std::size_t>(sm)],
            2 * 10 * 4);
}

}  // namespace
}  // namespace qmcu::nn
