// The core correctness invariant of patch-based inference: the patch
// executor must reproduce layer-based results bit for bit (paper Fig. 1a —
// halos exist precisely so that no receptive field is truncated).
#include <gtest/gtest.h>

#include "models/weights.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/rng.h"
#include "patch/mcunetv2.h"
#include "patch/patch_executor.h"

namespace qmcu::patch {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

void expect_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

nn::Graph stage_net() {
  nn::Graph g("stage");
  const int in = g.add_input(nn::TensorShape{17, 17, 3});  // odd extent
  const int stem = g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU6);
  const int a = g.add_conv2d(stem, 8, 3, 1, 1, nn::Activation::ReLU);
  const int res = g.add_residual_add(stem, a, nn::Activation::None);
  const int dw = g.add_depthwise_conv2d(res, 3, 2, 1, nn::Activation::ReLU6);
  const int head = g.add_conv2d(dw, 16, 1, 1, 0, nn::Activation::ReLU);
  const int gap = g.add_global_avg_pool(head);
  g.add_fully_connected(gap, 10, nn::Activation::None);
  models::init_parameters(g, 31);
  return g;
}

struct GridCase {
  int split;
  int grid;
};

class PatchEquivalence : public ::testing::TestWithParam<GridCase> {};

TEST_P(PatchEquivalence, MatchesLayerBasedBitForBit) {
  const auto [split, grid] = GetParam();
  const nn::Graph g = stage_net();
  PatchSpec spec;
  spec.split_layer = split;
  spec.grid_rows = spec.grid_cols = grid;
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), 7);
  expect_identical(pexec.run(in), exec.run(in));
}

INSTANTIATE_TEST_SUITE_P(SplitsAndGrids, PatchEquivalence,
                         ::testing::Values(GridCase{1, 2}, GridCase{1, 3},
                                           GridCase{3, 2}, GridCase{3, 3},
                                           GridCase{4, 2}, GridCase{4, 4},
                                           GridCase{5, 3}));

TEST(PatchExecutor, AssembledStageMatchesLayerBasedFeatureMap) {
  const nn::Graph g = stage_net();
  PatchSpec spec;
  spec.split_layer = 4;  // the depthwise
  spec.grid_rows = spec.grid_cols = 3;
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), 8);
  const auto fms = exec.run_all(in);
  expect_identical(pexec.run_stage_assembled(in), fms[4]);
}

TEST(PatchExecutor, MobileNetV2PatchInferenceExact) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const PatchSpec spec = plan_mcunetv2(g, {/*grid=*/2, /*downsample=*/4});
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), 9);
  expect_identical(pexec.run(in), exec.run(in));
}

TEST(PatchExecutor, SqueezeNetConcatStageExact) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_squeezenet(cfg);
  const PatchSpec spec = plan_mcunetv2(g, {/*grid=*/2, /*downsample=*/4});
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), 10);
  expect_identical(pexec.run(in), exec.run(in));
}

TEST(PatchExecutor, StepHookSeesEveryStep) {
  const nn::Graph g = stage_net();
  PatchSpec spec;
  spec.split_layer = 3;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  const PatchExecutor pexec(g, plan);
  int calls = 0;
  (void)pexec.run_stage(random_input(g.shape(0), 11),
                        [&calls](int, int, nn::Tensor&) { ++calls; });
  int expected = 0;
  for (const PatchBranch& b : plan.branches) {
    expected += static_cast<int>(b.steps.size());
  }
  EXPECT_EQ(calls, expected);
}

TEST(PatchExecutor, HookCanPerturbStageResults) {
  const nn::Graph g = stage_net();
  PatchSpec spec;
  spec.split_layer = 3;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Tensor in = random_input(g.shape(0), 12);
  const nn::Tensor clean = pexec.run(in);
  const nn::Tensor dirty =
      pexec.run(in, [](int, int, nn::Tensor& t) {
        for (float& v : t.data()) v *= 1.01f;
      });
  double diff = 0.0;
  for (std::size_t i = 0; i < clean.data().size(); ++i) {
    diff += std::abs(clean.data()[i] - dirty.data()[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(CropFromRegion, ZeroFillsOutOfBounds) {
  nn::Tensor have(nn::TensorShape{2, 2, 1});
  have.at(0, 0, 0) = 1.0f;
  have.at(0, 1, 0) = 2.0f;
  have.at(1, 0, 0) = 3.0f;
  have.at(1, 1, 0) = 4.0f;
  // `have` covers the full 2x2 map; ask for a region extending into padding.
  const nn::Tensor out = crop_from_region(
      have, Region{{0, 2}, {0, 2}}, Region{{-1, 2}, {-1, 2}}, {2, 2, 1});
  EXPECT_EQ(out.shape(), (nn::TensorShape{3, 3, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);  // padding
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(2, 2, 0), 4.0f);
}

TEST(CropFromRegion, FailsWhenRequiredDataMissing) {
  nn::Tensor have(nn::TensorShape{2, 2, 1});
  // `have` covers rows 0..2 only; asking for row 3 (valid in an 8-row map)
  // must fail loudly rather than fabricate data.
  EXPECT_THROW(crop_from_region(have, Region{{0, 2}, {0, 2}},
                                Region{{1, 4}, {0, 2}}, {8, 8, 1}),
               std::logic_error);
}

}  // namespace
}  // namespace qmcu::patch

// ---------------------------------------------------------------------------
// Zoo-wide property sweep: patch-based inference must be bit-exact for every
// architecture in the model zoo, including the pooling-heavy (VGG16,
// SqueezeNet) and branched (InceptionV3) topologies whose stages exercise
// region pooling and concat propagation.
namespace qmcu::patch {
namespace {

class ZooWidePatchEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(ZooWidePatchEquivalence, BitExactAcrossTheZoo) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_model(GetParam(), cfg);
  const PatchSpec spec = plan_mcunetv2(g, {2, 4});
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  nn::Tensor in(g.shape(0));
  nn::Rng rng(21);
  for (float& v : in.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const nn::Tensor a = pexec.run(in);
  const nn::Tensor b = exec.run(in);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooWidePatchEquivalence,
                         ::testing::Values("mobilenetv2", "mcunet", "mnasnet",
                                           "fbnet_a", "ofa_cpu", "resnet18",
                                           "vgg16", "squeezenet",
                                           "inceptionv3"));

}  // namespace
}  // namespace qmcu::patch
