// Integration tests for the end-to-end QuantMCU pipeline (core/quantmcu.h):
// plan building, VDQS search wiring, VDPC ablation, and the headline
// orderings the paper reports.
#include <gtest/gtest.h>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "mcu/bitops.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"

namespace qmcu::core {
namespace {

struct Fixture {
  nn::Graph g;
  mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  mcu::CostModel cm{dev};
  std::vector<nn::Tensor> calib;
  std::vector<nn::Tensor> eval;

  Fixture() : g(make_graph()) {
    data::DataConfig dc;
    dc.resolution = 48;
    dc.outlier_probability = 0.02;
    const data::SyntheticDataset ds(dc);
    calib = ds.batch(0, 2);
    eval = ds.batch(10, 3);
  }

  static nn::Graph make_graph() {
    models::ModelConfig cfg;
    cfg.width_multiplier = 0.25f;
    cfg.resolution = 48;
    cfg.num_classes = 10;
    return models::make_mobilenet_v2(cfg);
  }

  QuantMcuConfig config() const {
    QuantMcuConfig cfg;
    cfg.patch.grid = 3;
    return cfg;
  }
};

TEST(QuantMcuPlan, SearchesEveryBranch) {
  Fixture f;
  const QuantMcuPlan plan =
      build_quantmcu_plan(f.g, f.dev, f.calib, f.config());
  EXPECT_EQ(plan.mixed_bits.size(), plan.patch_plan.branches.size());
  // one search per branch plus the shared tail branch
  EXPECT_EQ(plan.searches.size(), plan.patch_plan.branches.size() + 1);
  for (std::size_t b = 0; b < plan.mixed_bits.size(); ++b) {
    EXPECT_EQ(plan.mixed_bits[b].bits.size(),
              plan.patch_plan.branches[b].steps.size());
    for (int bits : plan.mixed_bits[b].bits) {
      EXPECT_TRUE(bits == 8 || bits == 4 || bits == 2);
    }
  }
  EXPECT_GT(plan.search_seconds, 0.0);
  EXPECT_GT(plan.last_output_entropy, 0.0);
  EXPECT_EQ(plan.full_precision_bitops, mcu::full_precision_bitops(f.g));
}

TEST(QuantMcuPlan, SearchAssignsSomeSubByte) {
  // The whole point: the searched config must actually use sub-byte maps.
  Fixture f;
  const QuantMcuPlan plan =
      build_quantmcu_plan(f.g, f.dev, f.calib, f.config());
  int subbyte = 0;
  for (const auto& bb : plan.mixed_bits) {
    for (int bits : bb.bits) subbyte += bits < 8 ? 1 : 0;
  }
  EXPECT_GT(subbyte, 0);
}

TEST(QuantMcuEvaluate, ReducesBitopsVsUniformPatch) {
  Fixture f;
  const QuantMcuConfig cfg = f.config();
  const QuantMcuPlan plan = build_quantmcu_plan(f.g, f.dev, f.calib, cfg);
  const QuantMcuEvaluation q =
      evaluate_quantmcu(f.g, plan, f.cm, f.eval, cfg);
  const QuantMcuEvaluation u =
      evaluate_uniform_patch(f.g, plan.patch_plan, f.cm, f.eval);
  EXPECT_LT(q.mean_bitops, u.mean_bitops);
  EXPECT_LT(q.mean_latency_ms, u.mean_latency_ms);
  EXPECT_LT(q.mean_peak_bytes, u.mean_peak_bytes);
}

TEST(QuantMcuEvaluate, BeatsLayerBasedBitops) {
  // Table I headline: QuantMCU BitOPs drop below even layer-based int8.
  Fixture f;
  const QuantMcuConfig cfg = f.config();
  const QuantMcuPlan plan = build_quantmcu_plan(f.g, f.dev, f.calib, cfg);
  const QuantMcuEvaluation q =
      evaluate_quantmcu(f.g, plan, f.cm, f.eval, cfg);
  const double layer_bitops = static_cast<double>(f.g.total_macs()) * 64.0;
  EXPECT_LT(q.mean_bitops, layer_bitops);
}

TEST(QuantMcuEvaluate, VdpcAblationShowsAccuracyCliff) {
  // Fig. 4: disabling VDPC must cost double-digit percentage points while
  // the guarded pipeline stays within ~1.5pp.
  Fixture f;
  QuantMcuConfig with_vdpc = f.config();
  const QuantMcuPlan plan =
      build_quantmcu_plan(f.g, f.dev, f.calib, with_vdpc);
  QuantMcuConfig without = with_vdpc;
  without.enable_vdpc = false;
  const QuantMcuEvaluation guarded =
      evaluate_quantmcu(f.g, plan, f.cm, f.eval, with_vdpc);
  const QuantMcuEvaluation blind =
      evaluate_quantmcu(f.g, plan, f.cm, f.eval, without);
  EXPECT_LT(guarded.top1_penalty_pp, 2.5);
  EXPECT_GT(blind.top1_penalty_pp, guarded.top1_penalty_pp + 3.0);
  EXPECT_GT(blind.noise.crushed_outlier_fraction, 0.5);
  EXPECT_LT(guarded.noise.crushed_outlier_fraction, 0.05);
}

TEST(QuantMcuEvaluate, VdpcCostsComputeButSavesAccuracy) {
  // Outlier-class branches run at 8-bit: with VDPC enabled the expected
  // BitOPs can only go up relative to the blind configuration.
  Fixture f;
  const QuantMcuConfig cfg = f.config();
  const QuantMcuPlan plan = build_quantmcu_plan(f.g, f.dev, f.calib, cfg);
  QuantMcuConfig blind_cfg = cfg;
  blind_cfg.enable_vdpc = false;
  const auto guarded = evaluate_quantmcu(f.g, plan, f.cm, f.eval, cfg);
  const auto blind = evaluate_quantmcu(f.g, plan, f.cm, f.eval, blind_cfg);
  EXPECT_GE(guarded.mean_bitops, blind.mean_bitops);
}

TEST(QuantMcuEvaluate, OutlierFractionTracksPhi) {
  Fixture f;
  QuantMcuConfig strict = f.config();   // phi = 0.96
  QuantMcuConfig lax = f.config();
  lax.vdpc.phi = 0.9999;
  const QuantMcuPlan plan = build_quantmcu_plan(f.g, f.dev, f.calib, strict);
  const auto a = evaluate_quantmcu(f.g, plan, f.cm, f.eval, strict);
  const auto b = evaluate_quantmcu(f.g, plan, f.cm, f.eval, lax);
  EXPECT_GE(a.outlier_patch_fraction, b.outlier_patch_fraction);
}

TEST(QuantMcuEvaluate, LambdaSweepTradesComputeForAccuracy) {
  // Table III shape: higher lambda -> more BitOPs, less penalty.
  Fixture f;
  QuantMcuConfig lo = f.config();
  lo.lambda = 0.1;
  QuantMcuConfig hi = f.config();
  hi.lambda = 0.9;
  const QuantMcuPlan plan_lo = build_quantmcu_plan(f.g, f.dev, f.calib, lo);
  const QuantMcuPlan plan_hi = build_quantmcu_plan(f.g, f.dev, f.calib, hi);
  const auto e_lo = evaluate_quantmcu(f.g, plan_lo, f.cm, f.eval, lo);
  const auto e_hi = evaluate_quantmcu(f.g, plan_hi, f.cm, f.eval, hi);
  EXPECT_LE(e_lo.mean_bitops, e_hi.mean_bitops);
  EXPECT_GE(e_lo.top1_penalty_pp, e_hi.top1_penalty_pp);
}

TEST(QuantMcuPlan, SearchIsFast) {
  // Table II: VDQS finishes in a fraction of the baselines' time. At this
  // test scale it must be well under a second.
  Fixture f;
  const QuantMcuPlan plan =
      build_quantmcu_plan(f.g, f.dev, f.calib, f.config());
  EXPECT_LT(plan.search_seconds, 5.0);
}

TEST(QuantMcuPlan, RejectsEmptyCalibration) {
  Fixture f;
  EXPECT_THROW(
      build_quantmcu_plan(f.g, f.dev, {}, f.config()),
      std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::core
