// The streaming runtime's exactness contract: in exact mode (default
// StreamingConfig), a StreamingSession fed any frame sequence produces
// bit-identical outputs to running the model in full on every frame — for
// every worker count, every quant mode (float, int8, 4-bit, mixed
// per-branch) and every kernel tier (the force-scalar/LUT CI legs re-run
// this binary). On top of that: skip accounting must prove reuse actually
// happened, tolerance mode must skip more than exact mode, the activation
// stats tracker must flag synthetic distribution drift, and StreamState
// reset/rebind must recover cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "mcu/device.h"
#include "models/zoo.h"
#include "nn/rng.h"
#include "nn/runtime/worker_pool.h"
#include "nn/streaming/activation_stats.h"
#include "nn/streaming/streaming_session.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

void expect_f_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

// A synthetic stream: frame 0 is random; each later frame copies its
// predecessor and moves a small square of fresh values — the temporal
// locality streaming exploits. Frame `hold` repeats frame hold-1 exactly
// (a static scene).
std::vector<nn::Tensor> make_stream(nn::TensorShape s, int frames,
                                    std::uint64_t seed) {
  std::vector<nn::Tensor> stream;
  stream.push_back(random_input(s, seed));
  nn::Rng rng(seed + 1);
  const int side = std::max(2, s.h / 4);
  for (int f = 1; f < frames; ++f) {
    nn::Tensor next = stream.back();
    if (f == 2) {  // one exactly-static frame mid-stream
      stream.push_back(std::move(next));
      continue;
    }
    const int y0 = static_cast<int>(rng.uniform(0, s.h - side));
    const int x0 = static_cast<int>(rng.uniform(0, s.w - side));
    for (int y = y0; y < y0 + side; ++y) {
      for (int x = x0; x < x0 + side; ++x) {
        for (int c = 0; c < s.c; ++c) {
          next.at(y, x, c) = static_cast<float>(rng.normal(0.0, 1.0));
        }
      }
    }
    stream.push_back(std::move(next));
  }
  return stream;
}

// --- float: exact mode is bit-identical for every worker count --------------

TEST(Streaming, FloatBitExactAcrossZooAndWorkerCounts) {
  for (const char* name : {"mobilenetv2", "mcunet", "mnasnet"}) {
    const nn::Graph g = models::make_model(name, small_cfg());
    const patch::PatchPlan plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
    const patch::CompiledPatchModel model(g, plan);
    const std::vector<nn::Tensor> stream = make_stream(g.shape(0), 6, 40);
    for (const int workers : {1, 2, 4}) {
      nn::WorkerPool pool(workers);
      nn::WorkerPool* p = workers == 1 ? nullptr : &pool;
      nn::streaming::StreamingSession<patch::CompiledPatchModel> session;
      for (const nn::Tensor& frame : stream) {
        const nn::Tensor got = session.next(model, frame, p);
        expect_f_identical(got, model.run(frame));
      }
      // The moving-square stream must actually have skipped work.
      const nn::streaming::StreamingStats& st = session.stats();
      EXPECT_EQ(st.frames, 6);
      EXPECT_EQ(st.unchanged_frames, 1) << name;
      EXPECT_GT(st.branches_skipped, 0) << name << " workers " << workers;
    }
  }
}

// --- quant: int8 and 4-bit --------------------------------------------------

TEST(Streaming, QuantBitExactAcrossBitwidthsAndWorkerCounts) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 5)});
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const std::vector<nn::Tensor> stream = make_stream(g.shape(0), 5, 41);
  for (const int bits : {8, 4}) {
    const auto cfg =
        quant::make_quant_config(g, ranges, nn::uniform_bits(g, bits));
    const patch::CompiledPatchQuantModel model(g, plan, cfg);
    for (const int workers : {1, 2, 4}) {
      nn::WorkerPool pool(workers);
      nn::WorkerPool* p = workers == 1 ? nullptr : &pool;
      nn::streaming::StreamingSession<patch::CompiledPatchQuantModel> session;
      for (const nn::Tensor& frame : stream) {
        expect_q_identical(session.next(model, frame, p), model.run(frame));
      }
      EXPECT_GT(session.stats().branches_skipped, 0)
          << bits << " bits, " << workers << " workers";
    }
  }
}

TEST(Streaming, MixedModeBitExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);
  const patch::CompiledPatchQuantModel model(g, plan.patch_plan, deploy_cfg,
                                             branch_cfgs);
  const std::vector<nn::Tensor> stream =
      make_stream(g.shape(0), 5, 42);
  for (const int workers : {1, 2, 4}) {
    nn::WorkerPool pool(workers);
    nn::WorkerPool* p = workers == 1 ? nullptr : &pool;
    nn::streaming::StreamingSession<patch::CompiledPatchQuantModel> session;
    for (const nn::Tensor& frame : stream) {
      expect_q_identical(session.next(model, frame, p), model.run(frame));
    }
  }
}

// --- skip accounting --------------------------------------------------------

TEST(Streaming, UnchangedFrameSkipsEverything) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor frame = random_input(g.shape(0), 50);

  nn::streaming::StreamingSession<patch::CompiledPatchModel> session;
  expect_f_identical(session.next(model, frame), model.run(frame));
  // Frame 1 primes: everything ran.
  EXPECT_EQ(session.stats().branches_skipped, 0);
  EXPECT_EQ(session.stats().branches_recomputed,
            static_cast<std::int64_t>(plan.branches.size()));

  // Same frame again: the diff short-circuits before touching the model.
  expect_f_identical(session.next(model, frame), model.run(frame));
  const nn::streaming::StreamingStats& st = session.stats();
  EXPECT_EQ(st.frames, 2);
  EXPECT_EQ(st.unchanged_frames, 1);
  EXPECT_EQ(st.branches_recomputed,
            static_cast<std::int64_t>(plan.branches.size()));
  EXPECT_EQ(st.tail_rest_runs, 1);
  EXPECT_GT(st.branch_skip_ratio(), 0.0);
}

TEST(Streaming, LocalChangeSkipsFarBranchesAndBands) {
  // A 4x4 grid localises a corner change to a few branches; bands of
  // untouched upstream rows must not rerun either.
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {4, 4}));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor f0 = random_input(g.shape(0), 51);
  nn::Tensor f1 = f0;
  f1.at(0, 0, 0) += 1.0f;  // one corner pixel

  nn::streaming::StreamingSession<patch::CompiledPatchModel> session;
  expect_f_identical(session.next(model, f0), model.run(f0));
  expect_f_identical(session.next(model, f1), model.run(f1));
  const nn::streaming::StreamingStats& st = session.stats();
  const auto total = static_cast<std::int64_t>(plan.branches.size());
  // Frame 2 recomputed only the corner's branches.
  EXPECT_LT(st.branches_recomputed, 2 * total);
  EXPECT_GT(st.branches_skipped, 0);
  if (!model.pipelined_tail().empty()) {
    EXPECT_GT(st.bands_skipped, 0) << "clean-row bands should not rerun";
  }
}

TEST(Streaming, ToleranceModeSkipsMoreThanExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor f0 = random_input(g.shape(0), 52);
  nn::Tensor f1 = f0;
  f1.at(3, 3, 0) += 1e-5f;  // sub-tolerance wiggle

  nn::streaming::StreamingSession<patch::CompiledPatchModel> exact;
  exact.next(model, f0);
  exact.next(model, f1);

  nn::streaming::StreamingConfig tol_cfg;
  tol_cfg.max_region_delta = 1e-3f;
  nn::streaming::StreamingSession<patch::CompiledPatchModel> tolerant(
      tol_cfg);
  tolerant.next(model, f0);
  const nn::Tensor got = tolerant.next(model, f1);

  EXPECT_GT(tolerant.stats().branches_skipped,
            exact.stats().branches_skipped);
  // Tolerance kept frame 1's bytes for the wiggled branch: output equals
  // the *previous* frame's exact output.
  expect_f_identical(got, model.run(f0));
}

// --- reset / rebind ---------------------------------------------------------

TEST(Streaming, ResetRecomputesAndStaysExact) {
  const nn::Graph g = models::make_model("mcunet", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const std::vector<nn::Tensor> stream = make_stream(g.shape(0), 3, 53);

  nn::streaming::StreamingSession<patch::CompiledPatchModel> session;
  for (const nn::Tensor& f : stream) session.next(model, f);
  session.reset();  // scene cut
  const std::int64_t before = session.stats().branches_recomputed;
  expect_f_identical(session.next(model, stream[0]), model.run(stream[0]));
  // Post-reset frame ran in full.
  EXPECT_EQ(session.stats().branches_recomputed - before,
            static_cast<std::int64_t>(plan.branches.size()));
}

TEST(Streaming, RebindToDifferentModelRecovers) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel a(g, plan);
  const patch::CompiledPatchModel b(g, plan);
  const nn::Tensor frame = random_input(g.shape(0), 54);

  nn::streaming::StreamingSession<patch::CompiledPatchModel> session;
  session.next(a, frame);
  // Handing the session another model (hot swap) must reset and re-prime,
  // not reuse state laid out for `a`.
  expect_f_identical(session.next(b, frame), b.run(frame));
  EXPECT_EQ(session.stats().unchanged_frames, 0);
}

TEST(Streaming, WorkerCountIsPinnedPerState) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor frame = random_input(g.shape(0), 55);

  nn::WorkerPool two(2);
  nn::WorkerPool four(4);
  patch::StreamState state;
  state.branch_dirty.assign(plan.branches.size(), 1);
  (void)model.run_streaming(frame, &two, state);
  EXPECT_EQ(state.pinned_workers(), 2);
  // The retained layout depends on the worker count: switching pools
  // without reset() must be rejected, not silently corrupt.
  EXPECT_THROW((void)model.run_streaming(frame, &four, state),
               std::exception);
  state.reset();
  (void)model.run_streaming(frame, &four, state);
  EXPECT_EQ(state.pinned_workers(), 4);
}

// --- activation stats / drift ----------------------------------------------

TEST(Streaming, StatsHookObservesTailLayers) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 5)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);

  nn::streaming::StreamingConfig scfg;
  scfg.track_stats = true;
  nn::streaming::StreamingSession<patch::CompiledPatchQuantModel> session(
      scfg);
  const nn::Tensor frame = random_input(g.shape(0), 60);
  expect_q_identical(session.next(model, frame), model.run(frame));
  // The hook saw the assembled map and every tail layer at least once.
  EXPECT_GT(session.tracker().observations(), 0);
  // In-distribution input: no drift alarm.
  EXPECT_FALSE(session.stats().needs_recalibration);
  EXPECT_GE(session.stats().drift_score, 0.0);
}

// Codes spread across the quantized range without touching the rails: the
// healthy deployment baseline the drift cases below decay away from.
nn::QTensor spread_codes(const nn::QuantParams& p) {
  nn::QTensor t({8, 8, 4}, p);
  std::int8_t code = -100;
  for (auto& v : t.data()) {
    v = code;
    code = code >= 100 ? std::int8_t{-100} : static_cast<std::int8_t>(code + 1);
  }
  return t;
}

TEST(Streaming, TrackerFlagsSaturationDrift) {
  // After a healthy baseline frame, the codes pile up at the clamp rails —
  // the signature of a calibrated range that became too narrow.
  nn::streaming::ActivationStatsConfig cfg;
  cfg.sample_stride = 1;
  cfg.ema = 0.5f;  // fast EMA: the drift shows within a few frames
  nn::streaming::ActivationStatsTracker tracker(cfg);
  const nn::QuantParams p = nn::choose_quant_params(-1.0f, 1.0f, 8);
  tracker.observe(0, spread_codes(p));
  EXPECT_FALSE(tracker.needs_recalibration()) << "baseline must be calm";

  nn::QTensor saturated({8, 8, 4}, p);
  const auto qmax = static_cast<std::int8_t>(p.qmax());
  std::fill(saturated.data().begin(), saturated.data().end(), qmax);
  for (int f = 0; f < 3; ++f) tracker.observe(0, saturated);
  EXPECT_GT(tracker.saturation_fraction(0), 0.5);
  EXPECT_GT(tracker.layer_drift(0), 1.0);
  EXPECT_TRUE(tracker.needs_recalibration());
  // The proposed range widens past the saturating edge.
  const auto proposed = tracker.drifted_ranges(1);
  ASSERT_EQ(proposed.size(), 1u);
  EXPECT_TRUE(proposed[0].seen);
  EXPECT_GT(proposed[0].max_v, p.dequantize(p.qmax()) - 1e-6f);
}

TEST(Streaming, TrackerFlagsShrunkenDistribution) {
  // Codes huddling around zero waste the calibrated span: utilization
  // collapse versus the baseline must raise drift without any saturation.
  nn::streaming::ActivationStatsConfig cfg;
  cfg.sample_stride = 1;
  cfg.ema = 0.5f;
  nn::streaming::ActivationStatsTracker tracker(cfg);
  const nn::QuantParams p = nn::choose_quant_params(-1.0f, 1.0f, 8);
  tracker.observe(3, spread_codes(p));
  EXPECT_FALSE(tracker.needs_recalibration());

  nn::QTensor narrow({8, 8, 4}, p);
  std::fill(narrow.data().begin(), narrow.data().end(), std::int8_t{1});
  for (int f = 0; f < 4; ++f) tracker.observe(3, narrow);
  EXPECT_EQ(tracker.saturation_fraction(3), 0.0);
  EXPECT_LT(tracker.range_utilization(3), 0.2);
  EXPECT_GT(tracker.layer_drift(3), 1.0);
  // The proposed range tightens onto the live values.
  const auto proposed = tracker.drifted_ranges(4);
  EXPECT_TRUE(proposed[3].seen);
  EXPECT_LT(proposed[3].max_v - proposed[3].min_v, 2.0f);
  // Unobserved layers stay unseen.
  EXPECT_FALSE(proposed[0].seen);
}

TEST(Streaming, InDistributionStreamStaysCalm) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 5),
                                      random_input(g.shape(0), 6)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);

  nn::streaming::StreamingConfig scfg;
  scfg.track_stats = true;
  nn::streaming::StreamingSession<patch::CompiledPatchQuantModel> session(
      scfg);
  for (const nn::Tensor& f : make_stream(g.shape(0), 4, 70)) {
    session.next(model, f);
  }
  EXPECT_FALSE(session.stats().needs_recalibration);
}

}  // namespace
}  // namespace qmcu
