// Randomised topology fuzzing: generate random (but valid) conv networks
// and verify the core invariants hold on all of them —
//   * patch-based float inference is bit-identical to layer-based;
//   * patch-based int8 inference is bit-identical to layer-based int8;
//   * tiles of every plan partition the cut feature map exactly.
// Hand-written topologies only cover what their author thought of; twenty
// seeded random graphs cover the rest.
#include <gtest/gtest.h>

#include <set>

#include "models/weights.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "quant/calibration.h"

namespace qmcu::patch {
namespace {

// Random chain with occasional residual blocks, pools and concats; always
// ends in GAP + FC so every graph is a valid classifier.
nn::Graph random_graph(std::uint64_t seed) {
  nn::Rng rng(seed);
  nn::Graph g("fuzz_" + std::to_string(seed));
  const int res = 16 + 2 * static_cast<int>(rng.uniform() * 8);  // 16..30
  int x = g.add_input(nn::TensorShape{res, res, 3});
  const int blocks = 3 + static_cast<int>(rng.uniform() * 4);  // 3..6
  for (int b = 0; b < blocks; ++b) {
    if (g.shape(x).h < 4) break;
    const double pick = rng.uniform();
    const auto act = static_cast<nn::Activation>(
        static_cast<int>(rng.uniform() * 3.0));
    const int ch = 4 + 4 * static_cast<int>(rng.uniform() * 3);  // 4..12
    if (pick < 0.35) {
      // plain conv, kernel 1/3/5, stride 1/2
      const int k = 1 + 2 * static_cast<int>(rng.uniform() * 3.0);
      const int s = rng.uniform() < 0.4 ? 2 : 1;
      x = g.add_conv2d(x, ch, k, s, k / 2, act);
    } else if (pick < 0.55) {
      // residual block
      const int c = g.shape(x).c;
      const int a = g.add_conv2d(x, c, 3, 1, 1, act);
      const int bb = g.add_depthwise_conv2d(a, 3, 1, 1, act);
      x = g.add_residual_add(x, bb, nn::Activation::None);
    } else if (pick < 0.7) {
      // two-branch concat
      const int a = g.add_conv2d(x, ch, 1, 1, 0, act);
      const int bb = g.add_conv2d(x, ch, 3, 1, 1, act);
      const std::array<int, 2> ins{a, bb};
      x = g.add_concat(ins);
    } else if (pick < 0.85) {
      x = g.add_max_pool(x, 3, rng.uniform() < 0.5 ? 2 : 1, 1);
    } else {
      x = g.add_depthwise_conv2d(x, 3, rng.uniform() < 0.4 ? 2 : 1, 1, act);
    }
  }
  x = g.add_global_avg_pool(x);
  g.add_fully_connected(x, 5, nn::Activation::None);
  models::init_parameters(g, seed ^ 0xabcdef);
  return g;
}

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// Pick the deepest cut point that still admits a 2x2 grid.
int pick_cut(const nn::Graph& g) {
  const std::vector<int> cuts = valid_cut_points(g);
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
    if (g.shape(*it).h >= 2 && g.shape(*it).w >= 2) return *it;
  }
  return -1;
}

class FuzzedTopology : public ::testing::TestWithParam<int> {};

TEST_P(FuzzedTopology, FloatPatchInferenceBitExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const nn::Graph g = random_graph(seed);
  const int cut = pick_cut(g);
  if (cut < 0) GTEST_SKIP() << "no spatial cut point in this sample";
  PatchSpec spec;
  spec.split_layer = cut;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchExecutor pexec(g, build_patch_plan(g, spec));
  const nn::Executor exec(g);
  const nn::Tensor in = random_input(g.shape(0), seed + 1);
  const nn::Tensor a = pexec.run(in);
  const nn::Tensor b = exec.run(in);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]) << "seed " << seed;
  }
}

TEST_P(FuzzedTopology, QuantizedPatchInferenceBitExact) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const nn::Graph g = random_graph(seed);
  const int cut = pick_cut(g);
  if (cut < 0) GTEST_SKIP() << "no spatial cut point in this sample";
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), seed + 2)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  PatchSpec spec;
  spec.split_layer = cut;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchQuantExecutor pexec(g, build_patch_plan(g, spec), cfg);
  const nn::QuantExecutor qexec(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), seed + 3);
  const nn::QTensor a = pexec.run(in);
  const nn::QTensor b = qexec.run(in);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "seed " << seed;
  }
}

TEST_P(FuzzedTopology, TilesPartitionEveryCutLayer) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const nn::Graph g = random_graph(seed);
  for (int cut : valid_cut_points(g)) {
    const nn::TensorShape& s = g.shape(cut);
    if (s.h < 2 || s.w < 2) continue;
    PatchSpec spec;
    spec.split_layer = cut;
    spec.grid_rows = spec.grid_cols = 2;
    const PatchPlan plan = build_patch_plan(g, spec);
    std::set<std::pair<int, int>> covered;
    for (const PatchBranch& b : plan.branches) {
      const Region r = b.steps.back().out_region;
      for (int y = r.y.begin; y < r.y.end; ++y) {
        for (int x = r.x.begin; x < r.x.end; ++x) {
          ASSERT_TRUE(covered.emplace(y, x).second)
              << "seed " << seed << " cut " << cut;
        }
      }
    }
    ASSERT_EQ(covered.size(),
              static_cast<std::size_t>(s.h) * static_cast<std::size_t>(s.w))
        << "seed " << seed << " cut " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(TwentySeeds, FuzzedTopology,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace qmcu::patch
