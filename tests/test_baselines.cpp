// Tests for the Table II quantization baselines (baselines/).
#include <gtest/gtest.h>

#include "baselines/haq.h"
#include "baselines/hawq.h"
#include "baselines/method.h"
#include "baselines/pact.h"
#include "baselines/rusci.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"

namespace qmcu::baselines {
namespace {

struct Fixture {
  nn::Graph g;
  std::vector<nn::Tensor> calib;

  Fixture() : g(make_graph()) {
    data::DataConfig dc;
    dc.resolution = 32;
    const data::SyntheticDataset ds(dc);
    calib = ds.batch(0, 2);
  }

  static nn::Graph make_graph() {
    models::ModelConfig cfg;
    cfg.width_multiplier = 0.25f;
    cfg.resolution = 32;
    cfg.num_classes = 10;
    return models::make_mobilenet_v2(cfg);
  }
};

void expect_valid(const MethodResult& r, const nn::Graph& g) {
  ASSERT_EQ(static_cast<int>(r.act_bits.size()), g.size());
  ASSERT_EQ(static_cast<int>(r.weight_bits.size()), g.size());
  for (int b : r.act_bits) EXPECT_TRUE(b == 8 || b == 4 || b == 2);
  for (int b : r.weight_bits) EXPECT_TRUE(b == 8 || b == 4 || b == 2);
  EXPECT_GT(r.search_seconds, 0.0);
}

TEST(Pact, ProducesUniformFourBit) {
  Fixture f;
  const MethodResult r = run_pact(f.g, f.calib);
  expect_valid(r, f.g);
  EXPECT_EQ(r.wa_bits, "4/4");
  for (int b : r.act_bits) EXPECT_EQ(b, 4);
  for (int b : r.weight_bits) EXPECT_EQ(b, 4);
}

TEST(Rusci, RespectsMemoryBudgets) {
  Fixture f;
  RusciConfig cfg;
  // Tight budgets force a real cascade.
  cfg.sram_budget = nn::plan_layer_based(f.g, nn::uniform_bits(f.g, 8))
                        .peak_bytes / 2;
  cfg.flash_budget = nn::model_flash_bytes(f.g, 8) / 2;
  cfg.validation_passes = 1;
  const MethodResult r = run_rusci(f.g, f.calib, cfg);
  expect_valid(r, f.g);
  EXPECT_EQ(r.wa_bits, "MP/MP");
  // Adjacent producer/consumer pairs fit the budget.
  for (int id = 0; id < f.g.size(); ++id) {
    for (int in : f.g.layer(id).inputs) {
      const std::int64_t pair =
          f.g.shape(in).bytes(r.act_bits[static_cast<std::size_t>(in)]) +
          f.g.shape(id).bytes(r.act_bits[static_cast<std::size_t>(id)]);
      EXPECT_LE(pair, cfg.sram_budget);
    }
  }
  // Weights fit flash.
  std::int64_t flash = 0;
  for (int id = 0; id < f.g.size(); ++id) {
    flash += (f.g.weight_count(id) *
                  r.weight_bits[static_cast<std::size_t>(id)] +
              7) /
             8;
  }
  EXPECT_LE(flash, cfg.flash_budget);
}

TEST(Rusci, GenerousBudgetKeepsEightBit) {
  Fixture f;
  RusciConfig cfg;
  cfg.sram_budget = 1 << 30;
  cfg.flash_budget = 1 << 30;
  cfg.validation_passes = 1;
  const MethodResult r = run_rusci(f.g, f.calib, cfg);
  for (int b : r.act_bits) EXPECT_EQ(b, 8);
  for (int b : r.weight_bits) EXPECT_EQ(b, 8);
}

TEST(Haq, MeetsBitopsTargetApproximately) {
  Fixture f;
  HaqConfig cfg;
  cfg.episodes = 12;
  cfg.target_bitops_ratio = 0.6;
  const MethodResult r = run_haq(f.g, f.calib, cfg);
  expect_valid(r, f.g);
  const std::int64_t got = mixed_weight_bitops(f.g, r.act_bits, r.weight_bits);
  const std::int64_t full =
      mixed_weight_bitops(f.g, nn::uniform_bits(f.g, 8),
                          nn::uniform_bits(f.g, 8));
  EXPECT_LT(got, full);  // the RL loop must have quantized something
}

TEST(Haq, DeterministicPerSeed) {
  Fixture f;
  HaqConfig cfg;
  cfg.episodes = 6;
  const MethodResult a = run_haq(f.g, f.calib, cfg);
  const MethodResult b = run_haq(f.g, f.calib, cfg);
  EXPECT_EQ(a.act_bits, b.act_bits);
}

TEST(Hawq, HitsBitopsTarget) {
  Fixture f;
  HawqConfig cfg;
  cfg.target_bitops_ratio = 0.6;
  const MethodResult r = run_hawq(f.g, f.calib, cfg);
  expect_valid(r, f.g);
  const std::int64_t got = mixed_weight_bitops(f.g, r.act_bits, r.weight_bits);
  const std::int64_t full = f.g.total_macs() * 64;
  EXPECT_LE(got, static_cast<std::int64_t>(0.65 * full));
}

TEST(Hawq, SensitiveLayersKeepMoreBits) {
  Fixture f;
  HawqConfig cfg;
  cfg.target_bitops_ratio = 0.5;
  const MethodResult r = run_hawq(f.g, f.calib, cfg);
  // Not everything should be crushed to 2 bits.
  int eights = 0;
  int twos = 0;
  for (int b : r.act_bits) {
    eights += b == 8 ? 1 : 0;
    twos += b == 2 ? 1 : 0;
  }
  EXPECT_GT(eights, 0);
}

TEST(EvaluateMethod, BaselineOrderingMatchesTable2) {
  // Ordering of Top-1: PACT (4/4) <= QuantMCU-class configs; and BitOPs of
  // 4/4 < 8/8. Here we verify the evaluator's internal consistency.
  Fixture f;
  MethodResult full;
  full.name = "Baseline";
  full.wa_bits = "8/8";
  full.act_bits = nn::uniform_bits(f.g, 8);
  full.weight_bits = nn::uniform_bits(f.g, 8);
  full.search_seconds = 1.0;
  MethodResult pact = run_pact(f.g, f.calib);

  const MethodMetrics m_full =
      evaluate_method(f.g, full, f.calib, "mobilenetv2");
  const MethodMetrics m_pact =
      evaluate_method(f.g, pact, f.calib, "mobilenetv2");
  EXPECT_LT(m_pact.bitops, m_full.bitops);
  EXPECT_LT(m_pact.peak_bytes, m_full.peak_bytes);
  EXPECT_LT(m_pact.top1, m_full.top1);
  EXPECT_GT(m_full.top1, 70.0);  // 8/8 loses well under 2pp from 71.9
}

TEST(EvaluateMethod, MixedWeightBitopsHonoursPerLayerWidths) {
  Fixture f;
  const auto act8 = nn::uniform_bits(f.g, 8);
  auto w_mixed = nn::uniform_bits(f.g, 8);
  // Halving one conv's weights must shave exactly macs*8*... /2.
  int conv = -1;
  for (int i = 0; i < f.g.size(); ++i) {
    if (f.g.layer(i).kind == nn::OpKind::Conv2D) {
      conv = i;
      break;
    }
  }
  ASSERT_GE(conv, 0);
  w_mixed[static_cast<std::size_t>(conv)] = 4;
  const std::int64_t full = mixed_weight_bitops(f.g, act8, act8);
  const std::int64_t mixed = mixed_weight_bitops(f.g, act8, w_mixed);
  EXPECT_EQ(full - mixed, f.g.macs(conv) * 4 * 8);
}

}  // namespace
}  // namespace qmcu::baselines
