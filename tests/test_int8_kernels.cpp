// Unit tests for the integer kernels (nn/ops/int8_kernels.h): quantized
// results must track the float reference within scale-derived bounds.
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "nn/ops/float_kernels.h"
#include "nn/ops/int8_kernels.h"
#include "nn/rng.h"

namespace qmcu::nn::ops {
namespace {

Layer conv_layer(int out_c, int k, int s, int p, Activation act) {
  Layer l;
  l.kind = OpKind::Conv2D;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  l.out_channels = out_c;
  l.act = act;
  return l;
}

Tensor random_tensor(TensorShape s, std::uint64_t seed, double stddev = 1.0) {
  Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

struct QuantizedConvCase {
  int kernel;
  int stride;
  int pad;
  Activation act;
};

class QuantizedConv : public ::testing::TestWithParam<QuantizedConvCase> {};

TEST_P(QuantizedConv, TracksFloatReference) {
  const auto [k, s, p, act] = GetParam();
  const TensorShape in_shape{9, 9, 4};
  const int out_c = 6;
  const Tensor in = random_tensor(in_shape, 11);
  std::vector<float> w(static_cast<std::size_t>(out_c * k * k * in_shape.c));
  std::vector<float> bias(static_cast<std::size_t>(out_c));
  nn::Rng rng(22);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.2));
  for (float& v : bias) v = static_cast<float>(rng.uniform(-0.2, 0.2));

  const Layer l = conv_layer(out_c, k, s, p, act);
  const Tensor ref = conv2d_f32(in, l, w, bias);

  // Quantize input / weights / output ranges.
  const auto [in_lo, in_hi] = tensor_min_max(in);
  const QuantParams in_p = choose_quant_params(in_lo, in_hi, 8);
  const QTensor qin = quantize(in, in_p);
  const QuantizedWeights qw = quantize_weights(w);
  const auto qbias = quantize_bias(bias, in_p.scale, qw.params.scale);
  const auto [out_lo, out_hi] = tensor_min_max(ref);
  const QuantParams out_p = choose_quant_params(out_lo, out_hi, 8);

  const QTensor qout = conv2d_q(qin, l, qw.data, qw.params, qbias, out_p);
  ASSERT_EQ(qout.shape(), ref.shape());

  // Error bound: output quantization step + accumulated input/weight noise.
  const double bound =
      static_cast<double>(out_p.scale) * 2.0 +
      static_cast<double>(in_p.scale) * 0.5 * k * k * in_shape.c * 0.2;
  const Tensor deq = dequantize(qout);
  for (std::size_t i = 0; i < deq.data().size(); ++i) {
    EXPECT_NEAR(deq.data()[i], ref.data()[i], bound) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, QuantizedConv,
    ::testing::Values(QuantizedConvCase{1, 1, 0, Activation::None},
                      QuantizedConvCase{3, 1, 1, Activation::ReLU},
                      QuantizedConvCase{3, 2, 1, Activation::ReLU6},
                      QuantizedConvCase{5, 1, 2, Activation::None},
                      QuantizedConvCase{5, 2, 2, Activation::ReLU6}));

TEST(QuantizedDepthwise, TracksFloatReference) {
  const TensorShape in_shape{7, 7, 8};
  const Tensor in = random_tensor(in_shape, 5);
  std::vector<float> w(static_cast<std::size_t>(3 * 3 * in_shape.c));
  nn::Rng rng(6);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.3));
  Layer l;
  l.kind = OpKind::DepthwiseConv2D;
  l.kernel_h = l.kernel_w = 3;
  l.stride_h = l.stride_w = 1;
  l.pad_h = l.pad_w = 1;
  l.act = Activation::ReLU6;

  const Tensor ref = depthwise_conv2d_f32(in, l, w, {});
  const auto [in_lo, in_hi] = tensor_min_max(in);
  const QuantParams in_p = choose_quant_params(in_lo, in_hi, 8);
  const QuantizedWeights qw = quantize_weights(w);
  const auto [out_lo, out_hi] = tensor_min_max(ref);
  const QuantParams out_p = choose_quant_params(out_lo, out_hi, 8);
  const QTensor qout =
      depthwise_conv2d_q(quantize(in, in_p), l, qw.data, qw.params, {}, out_p);
  const Tensor deq = dequantize(qout);
  const double bound = static_cast<double>(out_p.scale) * 2.0 +
                       static_cast<double>(in_p.scale) * 0.5 * 9 * 0.3;
  for (std::size_t i = 0; i < deq.data().size(); ++i) {
    EXPECT_NEAR(deq.data()[i], ref.data()[i], bound);
  }
}

TEST(QuantizedFullyConnected, TracksFloatReference) {
  const Tensor in = random_tensor(TensorShape{1, 1, 32}, 9);
  std::vector<float> w(32 * 10);
  nn::Rng rng(10);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.2));
  Layer l;
  l.kind = OpKind::FullyConnected;
  l.out_channels = 10;

  const Tensor ref = fully_connected_f32(in, l, w, {});
  const auto [in_lo, in_hi] = tensor_min_max(in);
  const QuantParams in_p = choose_quant_params(in_lo, in_hi, 8);
  const QuantizedWeights qw = quantize_weights(w);
  const auto [out_lo, out_hi] = tensor_min_max(ref);
  const QuantParams out_p = choose_quant_params(out_lo, out_hi, 8);
  const QTensor qout =
      fully_connected_q(quantize(in, in_p), l, qw.data, qw.params, {}, out_p);
  const Tensor deq = dequantize(qout);
  for (int c = 0; c < 10; ++c) {
    EXPECT_NEAR(deq.at(0, 0, c), ref.at(0, 0, c),
                static_cast<double>(out_p.scale) * 2.0 + 0.35);
  }
}

TEST(QuantizedMaxPool, ExactOnQuantizedGrid) {
  const QuantParams p = choose_quant_params(-1.0f, 1.0f, 8);
  QTensor in(TensorShape{2, 2, 1}, p);
  in.at(0, 0, 0) = 5;
  in.at(0, 1, 0) = -20;
  in.at(1, 0, 0) = 77;
  in.at(1, 1, 0) = 3;
  Layer l;
  l.kind = OpKind::MaxPool;
  l.kernel_h = l.kernel_w = 2;
  l.stride_h = l.stride_w = 2;
  const QTensor out = max_pool_q(in, l);
  EXPECT_EQ(out.at(0, 0, 0), 77);
  EXPECT_EQ(out.params(), p);
}

TEST(QuantizedAvgPool, RoundsToNearest) {
  const QuantParams p = choose_quant_params(-1.0f, 1.0f, 8);
  QTensor in(TensorShape{1, 2, 1}, p);
  in.at(0, 0, 0) = 3;
  in.at(0, 1, 0) = 4;
  Layer l;
  l.kind = OpKind::AvgPool;
  l.kernel_h = 1;
  l.kernel_w = 2;
  l.stride_h = 1;
  l.stride_w = 2;
  const QTensor out = avg_pool_q(in, l);
  EXPECT_EQ(out.at(0, 0, 0), 4);  // 3.5 rounds to 4
}

TEST(QuantizedAdd, RescalesMismatchedInputScales) {
  const QuantParams pa = choose_quant_params(0.0f, 1.0f, 8);
  const QuantParams pb = choose_quant_params(0.0f, 2.0f, 8);
  const QuantParams po = choose_quant_params(0.0f, 3.0f, 8);
  QTensor a(TensorShape{1, 1, 1}, pa);
  QTensor b(TensorShape{1, 1, 1}, pb);
  a.at(0, 0, 0) = static_cast<std::int8_t>(pa.quantize(1.0f));
  b.at(0, 0, 0) = static_cast<std::int8_t>(pb.quantize(2.0f));
  const QTensor out = add_q(a, b, Activation::None, po);
  EXPECT_NEAR(po.dequantize(out.at(0, 0, 0)), 3.0f, po.scale * 2.0f);
}

TEST(QuantizedSoftmax, ProbabilitiesSumToOne) {
  const QuantParams pin = choose_quant_params(-8.0f, 8.0f, 8);
  QTensor in(TensorShape{1, 1, 4}, pin);
  in.at(0, 0, 0) = 10;
  in.at(0, 0, 1) = 30;
  in.at(0, 0, 2) = -5;
  in.at(0, 0, 3) = 0;
  const QuantParams pout = choose_quant_params(0.0f, 1.0f, 8);
  const QTensor out = softmax_q(in, pout);
  float sum = 0.0f;
  for (int c = 0; c < 4; ++c) sum += pout.dequantize(out.at(0, 0, c));
  EXPECT_NEAR(sum, 1.0f, 4.0f * pout.scale);
}

TEST(ActivationRange, ReluClampsAtZeroPoint) {
  const QuantParams p = choose_quant_params(-2.0f, 2.0f, 8);
  const auto [lo, hi] = activation_range(Activation::ReLU, p);
  EXPECT_EQ(lo, p.zero_point);
  EXPECT_EQ(hi, p.qmax());
}

TEST(ActivationRange, Relu6ClampsAtSix) {
  const QuantParams p = choose_quant_params(0.0f, 8.0f, 8);
  const auto [lo, hi] = activation_range(Activation::ReLU6, p);
  EXPECT_EQ(lo, p.zero_point);
  EXPECT_EQ(hi, p.quantize(6.0f));
}

TEST(QuantizeWeights, SymmetricAndLossBounded) {
  std::vector<float> w{0.5f, -1.5f, 0.25f, 1.5f};
  const QuantizedWeights qw = quantize_weights(w);
  EXPECT_EQ(qw.params.zero_point, 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(qw.params.dequantize(qw.data[i]), w[i],
                qw.params.scale * 0.5f + 1e-6f);
  }
}

TEST(QuantizeBias, UsesProductScale) {
  const std::vector<float> bias{1.0f, -0.5f};
  const auto qb = quantize_bias(bias, 0.1f, 0.01f);
  EXPECT_EQ(qb[0], 1000);
  EXPECT_EQ(qb[1], -500);
}

}  // namespace
}  // namespace qmcu::nn::ops
