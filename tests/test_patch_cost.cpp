// Tests for the patch cost/memory model (patch/patch_cost.h).
#include <gtest/gtest.h>

#include "mcu/device.h"
#include "nn/memory_planner.h"
#include "patch/mcunetv2.h"
#include "patch/patch_cost.h"

namespace qmcu::patch {
namespace {

nn::Graph stage_net() {
  nn::Graph g("stage");
  const int in = g.add_input(nn::TensorShape{32, 32, 3});
  const int stem = g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU6);
  const int a = g.add_conv2d(stem, 16, 3, 1, 1, nn::Activation::ReLU);
  const int b = g.add_conv2d(a, 16, 3, 2, 1, nn::Activation::ReLU);
  const int c = g.add_conv2d(b, 32, 3, 1, 1, nn::Activation::ReLU);
  const int gap = g.add_global_avg_pool(c);
  g.add_fully_connected(gap, 10, nn::Activation::None);
  return g;
}

PatchPlan make_plan(const nn::Graph& g, int split, int grid) {
  PatchSpec spec;
  spec.split_layer = split;
  spec.grid_rows = spec.grid_cols = grid;
  return build_patch_plan(g, spec);
}

mcu::CostModel cost_model() {
  return mcu::CostModel(mcu::arduino_nano_33_ble_sense());
}

TEST(PatchCost, Uniform8BitopsExceedLayerBasedByRedundancy) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const auto bits = uniform_branch_bits(plan, 8);
  const auto tail = nn::uniform_bits(g, 8);
  const PatchCost cost =
      evaluate_patch_cost(g, plan, bits, tail, cost_model());
  const std::int64_t layer_bitops = g.total_macs() * 8 * 8;
  EXPECT_GT(cost.bitops, layer_bitops);
  // ... by exactly the redundant MACs at 8x8.
  EXPECT_EQ(cost.bitops - layer_bitops, plan.redundant_macs() * 64);
}

TEST(PatchCost, PatchPeakBelowLayerBasedPeak) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 4);
  const auto bits = uniform_branch_bits(plan, 8);
  const auto tail = nn::uniform_bits(g, 8);
  const PatchCost cost =
      evaluate_patch_cost(g, plan, bits, tail, cost_model());
  const auto layer_plan = nn::plan_layer_based(g, tail);
  EXPECT_LT(cost.peak_bytes, layer_plan.peak_bytes);
}

TEST(PatchCost, SubByteBranchesCutBitopsAndMemory) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const auto tail = nn::uniform_bits(g, 8);
  const auto c8 = evaluate_patch_cost(g, plan, uniform_branch_bits(plan, 8),
                                      tail, cost_model());
  const auto c4 = evaluate_patch_cost(g, plan, uniform_branch_bits(plan, 4),
                                      tail, cost_model());
  const auto c2 = evaluate_patch_cost(g, plan, uniform_branch_bits(plan, 2),
                                      tail, cost_model());
  EXPECT_LT(c4.bitops, c8.bitops);
  EXPECT_LT(c2.bitops, c4.bitops);
  EXPECT_LT(c4.peak_bytes, c8.peak_bytes);
  EXPECT_LT(c2.peak_bytes, c4.peak_bytes);
  EXPECT_LT(c4.latency_ms, c8.latency_ms);
  EXPECT_LT(c2.latency_ms, c4.latency_ms);
}

TEST(PatchCost, MixedBranchesPriceIndividually) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const auto tail = nn::uniform_bits(g, 8);
  auto mixed = uniform_branch_bits(plan, 8);
  // One branch fully sub-byte: cost must fall strictly between all-8 and
  // all-4.
  mixed[0].bits.assign(mixed[0].bits.size(), 4);
  const auto c8 = evaluate_patch_cost(g, plan, uniform_branch_bits(plan, 8),
                                      tail, cost_model());
  const auto c4 = evaluate_patch_cost(g, plan, uniform_branch_bits(plan, 4),
                                      tail, cost_model());
  const auto cm = evaluate_patch_cost(g, plan, mixed, tail, cost_model());
  EXPECT_LT(cm.bitops, c8.bitops);
  EXPECT_GT(cm.bitops, c4.bitops);
}

TEST(PatchCost, StageBitopsAreSubsetOfTotal) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 1, 2);
  const auto cost = evaluate_patch_cost(
      g, plan, uniform_branch_bits(plan, 8), nn::uniform_bits(g, 8),
      cost_model());
  EXPECT_GT(cost.stage_bitops, 0);
  EXPECT_LT(cost.stage_bitops, cost.bitops);
}

TEST(PatchCost, LatencyConsistentWithCycles) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const mcu::CostModel cm = cost_model();
  const auto cost = evaluate_patch_cost(
      g, plan, uniform_branch_bits(plan, 8), nn::uniform_bits(g, 8), cm);
  EXPECT_NEAR(cost.latency_ms, cm.device().ms_from_cycles(cost.cycles),
              1e-9);
}

TEST(PatchCost, SplitFeatureMapBytesSumSlices) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const auto bits8 = uniform_branch_bits(plan, 8);
  const std::int64_t bytes = split_feature_map_bytes(g, plan, bits8);
  EXPECT_EQ(bytes, g.shape(3).bytes(8));
  const auto bits4 = uniform_branch_bits(plan, 4);
  EXPECT_EQ(split_feature_map_bytes(g, plan, bits4), g.shape(3).bytes(4));
}

TEST(PatchCost, BranchCostsPriceBordersCheaper) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 3);
  const std::vector<std::int64_t> costs = branch_costs(plan);
  ASSERT_EQ(costs.size(), plan.branches.size());
  for (std::size_t b = 0; b < costs.size(); ++b) {
    EXPECT_GE(costs[b], plan.branches[b].total_macs);
    EXPECT_GT(costs[b], 0);
  }
  // The interior branch (1,1) of a 3x3 grid carries halos on all four
  // sides: it must price above the corner branch (0,0).
  const int cols = plan.spec.grid_cols;
  EXPECT_GT(costs[static_cast<std::size_t>(1 * cols + 1)], costs[0]);
}

TEST(PatchCost, WeightedChunksCoverAndBalance) {
  // Uneven costs: cheap borders around one expensive interior.
  const std::vector<std::int64_t> costs = {10, 10, 100, 10, 10, 10};
  for (const int max_chunks : {1, 2, 3, 4, 6, 10}) {
    const auto chunks = weighted_chunks(costs, max_chunks);
    ASSERT_FALSE(chunks.empty());
    EXPECT_LE(static_cast<int>(chunks.size()), max_chunks);
    // Exact, ordered coverage of the index space.
    std::int64_t next = 0;
    for (const nn::IndexRange& r : chunks) {
      EXPECT_EQ(r.begin, next);
      EXPECT_LT(r.begin, r.end);
      next = r.end;
    }
    EXPECT_EQ(next, static_cast<std::int64_t>(costs.size()));
  }
  // With three chunks, the expensive element sits alone while its cheap
  // neighbours coalesce.
  const auto three = weighted_chunks(costs, 3);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[0].end, 2);   // {10, 10}
  EXPECT_EQ(three[1].end, 3);   // {100}
  EXPECT_EQ(three[2].end, 6);   // {10, 10, 10}

  // Degenerate inputs.
  EXPECT_TRUE(weighted_chunks({}, 4).empty());
  const auto one = weighted_chunks(std::vector<std::int64_t>{5}, 8);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0);
  EXPECT_EQ(one[0].end, 1);
}

TEST(PatchCost, RejectsMismatchedConfigs) {
  const nn::Graph g = stage_net();
  const PatchPlan plan = make_plan(g, 3, 2);
  const auto bits = uniform_branch_bits(plan, 8);
  std::vector<int> short_tail{8};
  EXPECT_THROW(
      evaluate_patch_cost(g, plan, bits, short_tail, cost_model()),
      std::invalid_argument);
  std::vector<BranchBits> wrong(bits.begin(), bits.end() - 1);
  EXPECT_THROW(evaluate_patch_cost(g, plan, wrong, nn::uniform_bits(g, 8),
                                   cost_model()),
               std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::patch
