// Plan artifacts (nn/plan_artifact.h, patch/patch_artifact.h): a model
// loaded from an mmap'd QMCP file must be bit-identical to one compiled
// from the graph in-memory — across float, uniform int8, sub-byte, mixed
// per-layer and patch-based mixed-precision modes, in every kernel
// generation the running host can dispatch — and corrupt or truncated
// artifacts must be rejected at map time, before any byte is trusted.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/weights.h"
#include "models/zoo.h"
#include "nn/compiled_model.h"
#include "nn/plan_artifact.h"
#include "nn/rng.h"
#include "nn/runtime/worker_pool.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "nn/serving/serving_frontend.h"
#include "patch/patch_artifact.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

nn::Graph small_net() {
  nn::Graph g("small");
  const int in = g.add_input(nn::TensorShape{16, 16, 3});
  const int stem =
      g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU6, "stem");
  const int a = g.add_conv2d(stem, 8, 3, 1, 1, nn::Activation::ReLU, "a");
  const int b = g.add_conv2d(a, 8, 3, 1, 1, nn::Activation::None, "b");
  const int add = g.add_residual_add(stem, b, nn::Activation::ReLU, "res");
  const int dw = g.add_depthwise_conv2d(add, 3, 2, 1, nn::Activation::ReLU6);
  const int gap = g.add_global_avg_pool(dw);
  const int fc = g.add_fully_connected(gap, 10, nn::Activation::None);
  g.add_softmax(fc);
  models::init_parameters(g, 42);
  return g;
}

nn::Graph mbv2_net() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

void expect_f_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

std::string artifact_path(const char* name) {
  return ::testing::TempDir() + "/" + name + ".qmcp";
}

// QMCU_FORCE_* are read live by the dispatch tables, so an RAII guard
// flips kernel generations in-process (see test_kernel_parity.cpp).
struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  const char* name_;
};

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.is_open()) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// --- float kind ------------------------------------------------------------

TEST(PlanArtifact, FloatRoundTripBitExact) {
  const nn::Graph g = small_net();
  const std::string path = artifact_path("float_small");
  nn::compile_to_artifact(g, path);

  const nn::LoadedModel loaded = nn::load_compiled(path);
  ASSERT_EQ(loaded.kind(), nn::ArtifactModelKind::Float);
  ASSERT_NE(loaded.float_model, nullptr);
  EXPECT_EQ(loaded.model, nullptr);

  const nn::CompiledModel ref(g);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const nn::Tensor in = random_input(g.shape(0), seed);
    expect_f_identical(loaded.float_model->run(in), ref.run(in));
  }
}

TEST(PlanArtifact, FloatMbv2RoundTripBitExact) {
  const nn::Graph g = mbv2_net();
  const std::string path = artifact_path("float_mbv2");
  nn::compile_to_artifact(g, path);
  const nn::LoadedModel loaded = nn::load_compiled(path);
  const nn::CompiledModel ref(g);
  const nn::Tensor in = random_input(g.shape(0), 4);
  expect_f_identical(loaded.float_model->run(in), ref.run(in));
}

// --- quant kind ------------------------------------------------------------

TEST(PlanArtifact, QuantRoundTripBitExactAcrossBitwidths) {
  const nn::Graph g = small_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 6),
                                      random_input(g.shape(0), 7)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const nn::Tensor in = random_input(g.shape(0), 8);

  // Uniform 8/4/2-bit plus a mixed per-layer assignment — exercises the
  // plain panel path, both LUT widths and the width-per-layer case.
  std::vector<std::vector<int>> assignments{
      nn::uniform_bits(g, 8), nn::uniform_bits(g, 4), nn::uniform_bits(g, 2)};
  std::vector<int> mixed = nn::uniform_bits(g, 8);
  for (std::size_t i = 0; i < mixed.size(); i += 2) mixed[i] = 4;
  assignments.push_back(mixed);

  for (std::size_t a = 0; a < assignments.size(); ++a) {
    const auto cfg = quant::make_quant_config(g, ranges, assignments[a]);
    const std::string path =
        artifact_path(("quant_small_" + std::to_string(a)).c_str());
    nn::compile_to_artifact(g, cfg, path);

    const nn::LoadedModel loaded = nn::load_compiled(path);
    ASSERT_EQ(loaded.kind(), nn::ArtifactModelKind::Quant);
    ASSERT_NE(loaded.model, nullptr);
    EXPECT_TRUE(loaded.artifact->fingerprint_matches());

    const nn::CompiledQuantModel ref(g, cfg);
    expect_q_identical(loaded.model->run(in), ref.run(in));
    // Repeated runs through the mapped storage stay deterministic.
    expect_q_identical(loaded.model->run(in), loaded.model->run(in));
  }
}

TEST(PlanArtifact, QuantMbv2RoundTripBitExact) {
  const nn::Graph g = mbv2_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 9)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const std::string path = artifact_path("quant_mbv2");
  nn::compile_to_artifact(g, cfg, path);

  const nn::LoadedModel loaded = nn::load_compiled(path);
  const nn::CompiledQuantModel ref(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 10);
  expect_q_identical(loaded.model->run(in), ref.run(in));

  // The arena plan rode along — no placement pass ran at load time.
  EXPECT_EQ(loaded.model->arena_bytes(), ref.arena_bytes());
  EXPECT_EQ(loaded.artifact->arena_plan().slots.size(),
            ref.arena_plan().slots.size());
}

TEST(PlanArtifact, SharedMappingAcrossModels) {
  // Several models over ONE mapping — the fleet configuration. All views
  // alias the same artifact pages and agree bit-exactly.
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 11)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const std::string path = artifact_path("quant_shared");
  nn::compile_to_artifact(g, cfg, path);

  const auto artifact = nn::PlanArtifact::map(path);
  std::vector<std::unique_ptr<nn::CompiledQuantModel>> lanes;
  for (int i = 0; i < 3; ++i) lanes.push_back(artifact->make_quant_model());
  for (const auto& lane : lanes) {
    EXPECT_EQ(lane->shared_parameters().get(), artifact->parameters().get());
  }

  const nn::CompiledQuantModel ref(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 12);
  const nn::QTensor want = ref.run(in);
  for (const auto& lane : lanes) expect_q_identical(lane->run(in), want);
}

// --- cross-generation load -------------------------------------------------
// An artifact is baked under one kernel generation but must load and run
// bit-exactly under any other: panels, column sums and LUT tables are
// generation-independent, and the loader re-derives offset rows when the
// baked activation zero-point bias differs from the running one.

TEST(PlanArtifact, LoadsBitExactUnderForcedGenerations) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 13)});
  const nn::Tensor in = random_input(g.shape(0), 14);

  for (int bits : {8, 4}) {
    const auto cfg =
        quant::make_quant_config(g, ranges, nn::uniform_bits(g, bits));
    const std::string path =
        artifact_path(("crossgen_" + std::to_string(bits)).c_str());
    // Bake under the host's native generation (whatever it dispatches).
    nn::compile_to_artifact(g, cfg, path);
    const nn::KernelFingerprint baked = nn::KernelFingerprint::current();

    const auto check_under = [&](const char* env) {
      EnvGuard guard(env, "1");
      // The reference is built AFTER the flip: both sides now run the
      // forced generation, and outputs must agree with the mapped panels.
      const nn::LoadedModel loaded = nn::load_compiled(path);
      const nn::CompiledQuantModel ref(g, cfg);
      expect_q_identical(loaded.model->run(in), ref.run(in));
      EXPECT_EQ(loaded.artifact->fingerprint() == baked, true);
      EXPECT_EQ(loaded.artifact->fingerprint_matches(),
                nn::KernelFingerprint::current() == baked);
    };
    check_under("QMCU_FORCE_NO_DOT");
    check_under("QMCU_FORCE_SCALAR");
  }
}

TEST(PlanArtifact, ScalarBakedArtifactLoadsUnderNativeGeneration) {
  // The reverse direction: bake under the weakest generation, load under
  // the host's strongest. Offset rows are re-derived when needed.
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 15)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const std::string path = artifact_path("crossgen_scalar_baked");
  {
    EnvGuard guard("QMCU_FORCE_SCALAR", "1");
    nn::compile_to_artifact(g, cfg, path);
  }
  const nn::LoadedModel loaded = nn::load_compiled(path);
  const nn::CompiledQuantModel ref(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 16);
  expect_q_identical(loaded.model->run(in), ref.run(in));
}

// --- patch kind ------------------------------------------------------------

TEST(PlanArtifact, PatchUniformRoundTripBitExact) {
  const nn::Graph g = mbv2_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 17)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchSpec spec = patch::plan_mcunetv2(g, {2, 2});
  const std::string path = artifact_path("patch_uniform");
  patch::compile_to_artifact(g, spec, cfg, {}, path);

  const patch::LoadedPatchModel loaded = patch::load_compiled_patch(path);
  ASSERT_NE(loaded.model, nullptr);
  const patch::CompiledPatchQuantModel ref(
      g, patch::build_patch_plan(g, spec), cfg);
  const nn::Tensor in = random_input(g.shape(0), 18);
  expect_q_identical(loaded.model->run(in), ref.run(in));

  // Pipelined dataflow run over the mapped storage: worker lanes adopt the
  // bundle's panels and must agree with the sequential path bit-exactly.
  nn::WorkerPool pool(3);
  expect_q_identical(loaded.model->run(in, &pool), ref.run(in));
}

TEST(PlanArtifact, PatchMixedModeRoundTripBitExact) {
  const nn::Graph g = mbv2_net();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);

  const std::string path = artifact_path("patch_mixed");
  patch::compile_to_artifact(g, plan.patch_plan.spec, deploy_cfg, branch_cfgs,
                             path);

  const patch::LoadedPatchModel loaded = patch::load_compiled_patch(path);
  const patch::CompiledPatchQuantModel ref(g, plan.patch_plan, deploy_cfg,
                                           branch_cfgs);
  const nn::Tensor in = ds.image(19);
  expect_q_identical(loaded.model->run(in), ref.run(in));
  nn::WorkerPool pool(3);
  expect_q_identical(loaded.model->run(in, &pool), ref.run(in));
}

// --- serving fleet ---------------------------------------------------------

bool q_equal(const nn::QTensor& a, const nn::QTensor& b) {
  if (a.shape() != b.shape() || !(a.params() == b.params())) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

TEST(PlanArtifact, ServingFleetSharesOneMappingAndHotSwaps) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 30)});
  const auto cfg8 = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto cfg4 = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 4));
  const std::string path8 = artifact_path("serve_v1");
  const std::string path4 = artifact_path("serve_v2");
  nn::compile_to_artifact(g, cfg8, path8);
  nn::compile_to_artifact(g, cfg4, path4);

  const nn::Tensor in = random_input(g.shape(0), 31);
  const nn::QTensor want8 = nn::CompiledQuantModel(g, cfg8).run(in);
  const nn::QTensor want4 = nn::CompiledQuantModel(g, cfg4).run(in);
  ASSERT_FALSE(q_equal(want8, want4));  // the swap must be observable

  // Artifacts outlive the frontend: every lane's model views the mapping.
  const auto art8 = nn::PlanArtifact::map(path8);
  const auto art4 = nn::PlanArtifact::map(path4);

  nn::serving::ServingConfig scfg;
  scfg.sessions = 3;
  scfg.pin_lanes = false;
  scfg.max_queue_depth = 0;  // unbounded: nothing may be shed in this test
  nn::serving::ServingFrontend<nn::CompiledQuantModel> frontend(
      scfg, [&art8](int, const std::shared_ptr<nn::ArenaSlab>&) {
        return art8->make_quant_model();
      });

  // All lanes serve the v1 mapping.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(q_equal(frontend.run(in), want8));
  }

  // Hot-swap to the v2 mapping while traffic is in flight. Requests
  // admitted before the swap may run either generation (their lane swaps
  // drain → rebind → resume), but every one of them must complete.
  std::vector<std::future<nn::QTensor>> inflight;
  for (int i = 0; i < 24; ++i) inflight.push_back(frontend.submit(in));
  frontend.swap_model([&art4](int, const std::shared_ptr<nn::ArenaSlab>&) {
    return art4->make_quant_model();
  });
  for (auto& f : inflight) {
    const nn::QTensor out = f.get();  // throws if any request was dropped
    EXPECT_TRUE(q_equal(out, want8) || q_equal(out, want4));
  }

  // After swap_model returns every lane serves the v2 mapping.
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(q_equal(frontend.run(in), want4));
  }
  const nn::serving::ServingStats stats = frontend.stats();
  EXPECT_EQ(stats.swapped_lanes, 3u);
  EXPECT_EQ(stats.completed, 36u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

// --- kind routing ----------------------------------------------------------

TEST(PlanArtifact, KindMismatchesAreRejected) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 20)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));

  const std::string qpath = artifact_path("kind_quant");
  nn::compile_to_artifact(g, cfg, qpath);
  EXPECT_THROW((void)patch::load_compiled_patch(qpath), std::invalid_argument);
  const auto quant_art = nn::PlanArtifact::map(qpath);
  EXPECT_THROW((void)quant_art->make_float_model(), std::invalid_argument);

  const std::string fpath = artifact_path("kind_float");
  nn::compile_to_artifact(g, fpath);
  const auto float_art = nn::PlanArtifact::map(fpath);
  EXPECT_THROW((void)float_art->make_quant_model(), std::invalid_argument);
  EXPECT_THROW((void)float_art->config(), std::invalid_argument);
}

// --- adversarial inputs ----------------------------------------------------

TEST(PlanArtifact, RejectsTruncationAtEveryScale) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 21)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const std::string path = artifact_path("trunc_src");
  nn::compile_to_artifact(g, cfg, path);
  const std::string bytes = read_file(path);
  ASSERT_GT(bytes.size(), 256u);

  const std::string broken = artifact_path("trunc_broken");
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{16}, std::size_t{63},
        std::size_t{64}, std::size_t{200}, bytes.size() / 2,
        bytes.size() - 1}) {
    write_file(broken, bytes.substr(0, keep));
    EXPECT_THROW((void)nn::PlanArtifact::map(broken), std::invalid_argument)
        << "kept " << keep << " of " << bytes.size() << " bytes";
  }
  // Appended garbage is a size mismatch, not silently ignored tail data.
  write_file(broken, bytes + std::string(16, '\xee'));
  EXPECT_THROW((void)nn::PlanArtifact::map(broken), std::invalid_argument);
}

TEST(PlanArtifact, RejectsBitFlipsAnywhere) {
  const nn::Graph g = small_net();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 22)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const std::string path = artifact_path("flip_src");
  nn::compile_to_artifact(g, cfg, path);
  const std::string bytes = read_file(path);

  const std::string broken = artifact_path("flip_broken");
  // Validated header fields (magic, version, sentinel, kind, section count,
  // file size — the fingerprint is deliberately NOT an integrity field: a
  // different generation is a valid artifact) plus payload samples. The
  // file ends inside the BLOB payload, so positions near the end land on
  // CRC-covered weight/panel bytes.
  std::vector<std::size_t> positions{0, 2, 4, 8, 12, 28, 32};
  for (int q = 1; q <= 8; ++q) {
    positions.push_back(bytes.size() - 1 - static_cast<std::size_t>(q) *
                                               (bytes.size() / 32));
  }
  for (const std::size_t pos : positions) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
    write_file(broken, corrupt);
    EXPECT_THROW((void)nn::PlanArtifact::map(broken), std::invalid_argument)
        << "flipped bit at byte " << pos;
  }
}

TEST(PlanArtifact, RejectsMissingFile) {
  EXPECT_THROW((void)nn::load_compiled("/nonexistent/model.qmcp"),
               std::invalid_argument);
}

}  // namespace
}  // namespace qmcu
