// Tests for graph inspection (nn/graph_io.h).
#include <gtest/gtest.h>

#include "models/zoo.h"
#include "nn/graph_io.h"

namespace qmcu::nn {
namespace {

Graph small() {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 3});
  const int a = g.add_conv2d(in, 4, 3, 2, 1, Activation::ReLU, "stem");
  g.add_global_avg_pool(a);
  return g;
}

TEST(Summarize, ContainsEveryLayerAndTotals) {
  const Graph g = small();
  const std::string s = summarize(g);
  EXPECT_NE(s.find("input"), std::string::npos);
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("gavgpool"), std::string::npos);
  EXPECT_NE(s.find("stem"), std::string::npos);
  EXPECT_NE(s.find("total:"), std::string::npos);
  EXPECT_NE(s.find(std::to_string(g.total_macs())), std::string::npos);
}

TEST(Summarize, GeometryColumnShowsKernelStridePad) {
  const std::string s = summarize(small());
  EXPECT_NE(s.find("3x3 s2 p1"), std::string::npos);
}

TEST(ToDot, ProducesValidDigraphWithAllEdges) {
  const Graph g = small();
  const std::string d = to_dot(g);
  EXPECT_EQ(d.find("digraph"), 0u);
  EXPECT_NE(d.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(d.find("n1 -> n2"), std::string::npos);
  EXPECT_EQ(d.back(), '\n');
}

TEST(ToDot, HighlightMarksPatchStage) {
  const Graph g = small();
  const std::string d = to_dot(g, 1);
  // Layers 0 and 1 highlighted, layer 2 not.
  EXPECT_EQ(std::count(d.begin(), d.end(), 'f') >= 2, true);
  EXPECT_NE(d.find("fillcolor=lightblue"), std::string::npos);
}

TEST(ToDot, WorksOnBranchedTopologies) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 32;
  cfg.num_classes = 10;
  cfg.init_weights = false;
  const Graph g = models::make_squeezenet(cfg);
  const std::string d = to_dot(g);
  // Every consumer edge appears exactly once.
  std::size_t edges = 0;
  for (std::size_t pos = d.find(" -> "); pos != std::string::npos;
       pos = d.find(" -> ", pos + 1)) {
    ++edges;
  }
  std::size_t expected = 0;
  for (int i = 0; i < g.size(); ++i) expected += g.layer(i).inputs.size();
  EXPECT_EQ(edges, expected);
}

}  // namespace
}  // namespace qmcu::nn
