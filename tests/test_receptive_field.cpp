// Tests for receptive-field interval arithmetic (patch/receptive_field.h).
#include <gtest/gtest.h>

#include "patch/receptive_field.h"

namespace qmcu::patch {
namespace {

nn::Layer windowed(nn::OpKind kind, int k, int s, int p) {
  nn::Layer l;
  l.kind = kind;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  return l;
}

TEST(Interval, SizeAndEmptiness) {
  EXPECT_EQ((Interval{2, 7}).size(), 5);
  EXPECT_TRUE((Interval{3, 3}).empty());
  EXPECT_FALSE((Interval{0, 1}).empty());
}

TEST(Interval, UniteTakesHull) {
  EXPECT_EQ(unite(Interval{0, 4}, Interval{2, 9}), (Interval{0, 9}));
  EXPECT_EQ(unite(Interval{5, 6}, Interval{0, 1}), (Interval{0, 6}));
}

TEST(Interval, UniteWithEmptyIsIdentity) {
  EXPECT_EQ(unite(Interval{}, Interval{3, 5}), (Interval{3, 5}));
  EXPECT_EQ(unite(Interval{3, 5}, Interval{}), (Interval{3, 5}));
}

TEST(Interval, ClampBounds) {
  EXPECT_EQ(clamp(Interval{-3, 12}, 0, 8), (Interval{0, 8}));
  EXPECT_EQ(clamp(Interval{2, 5}, 0, 8), (Interval{2, 5}));
}

TEST(Region, AreaAndEmptiness) {
  EXPECT_EQ((Region{{0, 3}, {0, 4}}).area(), 12);
  EXPECT_TRUE((Region{{1, 1}, {0, 4}}).empty());
}

TEST(RequiredInput, Conv3x3Stride1Pad1ExpandsByOne) {
  const nn::Layer l = windowed(nn::OpKind::Conv2D, 3, 1, 1);
  const Region out{{4, 8}, {4, 8}};
  const Region in = required_input_region(l, {16, 16, 3}, out);
  EXPECT_EQ(in.y, (Interval{3, 9}));
  EXPECT_EQ(in.x, (Interval{3, 9}));
}

TEST(RequiredInput, Conv3x3Stride2Pad1) {
  const nn::Layer l = windowed(nn::OpKind::Conv2D, 3, 2, 1);
  const Region out{{0, 4}, {0, 4}};
  const Region in = required_input_region(l, {16, 16, 3}, out);
  // in_begin = 0*2-1 = -1 (into padding); in_end = 3*2-1+3 = 8.
  EXPECT_EQ(in.y, (Interval{-1, 8}));
}

TEST(RequiredInput, PointwiseConvIsPerPixel) {
  const nn::Layer l = windowed(nn::OpKind::Conv2D, 1, 1, 0);
  const Region out{{2, 5}, {7, 9}};
  EXPECT_EQ(required_input_region(l, {16, 16, 8}, out), out);
}

TEST(RequiredInput, PoolMatchesConvGeometry) {
  const nn::Layer pool = windowed(nn::OpKind::MaxPool, 2, 2, 0);
  const Region out{{1, 3}, {0, 2}};
  const Region in = required_input_region(pool, {8, 8, 4}, out);
  EXPECT_EQ(in.y, (Interval{2, 6}));
  EXPECT_EQ(in.x, (Interval{0, 4}));
}

TEST(RequiredInput, ElementwiseOpsAreIdentity) {
  nn::Layer add;
  add.kind = nn::OpKind::Add;
  const Region out{{3, 6}, {2, 4}};
  EXPECT_EQ(required_input_region(add, {8, 8, 4}, out), out);
  nn::Layer cat;
  cat.kind = nn::OpKind::Concat;
  EXPECT_EQ(required_input_region(cat, {8, 8, 4}, out), out);
}

TEST(RequiredInput, GlobalOpsNeedFullInput) {
  nn::Layer gap;
  gap.kind = nn::OpKind::GlobalAvgPool;
  const Region out{{0, 1}, {0, 1}};
  EXPECT_EQ(required_input_region(gap, {8, 8, 4}, out),
            (Region{{0, 8}, {0, 8}}));
}

// Property: composing two stride-2 convs multiplies the effective stride.
TEST(RequiredInput, ComposedStridesMultiply) {
  const nn::Layer l = windowed(nn::OpKind::Conv2D, 3, 2, 1);
  const Region out{{2, 3}, {2, 3}};  // one pixel
  const Region mid = required_input_region(l, {8, 8, 4}, out);
  const Region in = required_input_region(l, {16, 16, 4}, mid);
  // One output pixel two stride-2 layers up needs a 7x7 input region.
  EXPECT_EQ(in.y.size(), 7);
  EXPECT_EQ(in.x.size(), 7);
}

TEST(RequiredInput, RejectsInputLayer) {
  nn::Layer input;
  input.kind = nn::OpKind::Input;
  EXPECT_THROW(
      required_input_region(input, {8, 8, 3}, Region{{0, 1}, {0, 1}}),
      std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::patch
