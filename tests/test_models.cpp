// Tests for the model zoo (models/zoo.h): every architecture must build,
// shape-infer, carry parameters and execute end to end at small scale.
#include <gtest/gtest.h>

#include "models/blocks.h"
#include "models/weights.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/rng.h"

namespace qmcu::models {
namespace {

ModelConfig tiny_config() {
  ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 64;
  cfg.num_classes = 10;
  return cfg;
}

class EveryModel : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryModel, BuildsWithParametersOnEveryMacLayer) {
  const nn::Graph g = make_model(GetParam(), tiny_config());
  EXPECT_GT(g.size(), 10);
  for (int i = 0; i < g.size(); ++i) {
    if (nn::is_mac_op(g.layer(i).kind)) {
      EXPECT_TRUE(g.has_parameters(i)) << g.layer(i).name;
    }
  }
}

TEST_P(EveryModel, OutputIsClassDistribution) {
  const ModelConfig cfg = tiny_config();
  const nn::Graph g = make_model(GetParam(), cfg);
  EXPECT_EQ(g.shape(g.output()), (nn::TensorShape{1, 1, cfg.num_classes}));
}

TEST_P(EveryModel, ExecutesAndProducesNormalisedProbabilities) {
  const nn::Graph g = make_model(GetParam(), tiny_config());
  const nn::Executor exec(g);
  nn::Tensor in(g.shape(0));
  nn::Rng rng(5);
  for (float& v : in.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const nn::Tensor out = exec.run(in);
  float sum = 0.0f;
  for (float v : out.data()) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST_P(EveryModel, WeightsAreDeterministicPerSeed) {
  ModelConfig cfg = tiny_config();
  cfg.seed = 777;
  const nn::Graph a = make_model(GetParam(), cfg);
  const nn::Graph b = make_model(GetParam(), cfg);
  for (int i = 0; i < a.size(); ++i) {
    const auto wa = a.weights(i);
    const auto wb = b.weights(i);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t j = 0; j < wa.size(); ++j) {
      ASSERT_FLOAT_EQ(wa[j], wb[j]) << "layer " << i;
    }
  }
}

TEST_P(EveryModel, DifferentSeedsGiveDifferentWeights) {
  ModelConfig a_cfg = tiny_config();
  ModelConfig b_cfg = tiny_config();
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const nn::Graph a = make_model(GetParam(), a_cfg);
  const nn::Graph b = make_model(GetParam(), b_cfg);
  bool any_diff = false;
  for (int i = 0; i < a.size() && !any_diff; ++i) {
    const auto wa = a.weights(i);
    const auto wb = b.weights(i);
    for (std::size_t j = 0; j < wa.size(); ++j) {
      if (wa[j] != wb[j]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EveryModel,
    ::testing::Values("mobilenetv2", "mcunet", "mnasnet", "fbnet_a",
                      "ofa_cpu", "resnet18", "vgg16", "squeezenet",
                      "inceptionv3"));

TEST(ModelZoo, RegistryListsNineModels) {
  EXPECT_EQ(model_names().size(), 9u);
}

TEST(ModelZoo, UnknownNameRejected) {
  EXPECT_THROW(make_model("alexnet", tiny_config()), std::invalid_argument);
}

TEST(ModelZoo, MobileNetV2FullSizeMacsMatchLiterature) {
  ModelConfig cfg;
  cfg.init_weights = false;  // structure only; keep the test fast
  const nn::Graph g = make_mobilenet_v2(cfg);
  // Sandler et al. report ~300 MMACs for width 1.0 at 224x224.
  EXPECT_GT(g.total_macs(), 250'000'000);
  EXPECT_LT(g.total_macs(), 360'000'000);
}

TEST(ModelZoo, WidthMultiplierScalesMacsSuperlinearly) {
  ModelConfig big;
  big.init_weights = false;
  ModelConfig small = big;
  small.width_multiplier = 0.5f;
  const auto macs_big = make_mobilenet_v2(big).total_macs();
  const auto macs_small = make_mobilenet_v2(small).total_macs();
  EXPECT_LT(macs_small, macs_big / 2);  // roughly quadratic in width
}

TEST(ModelZoo, ResolutionScalesMacsQuadratically) {
  ModelConfig hi;
  hi.init_weights = false;
  ModelConfig lo = hi;
  lo.resolution = 112;
  const auto macs_hi = make_mobilenet_v2(hi).total_macs();
  const auto macs_lo = make_mobilenet_v2(lo).total_macs();
  const double ratio =
      static_cast<double>(macs_hi) / static_cast<double>(macs_lo);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(ModelZoo, ScaleChannelsRoundsToMultipleOfEight) {
  EXPECT_EQ(scale_channels(32, 1.0f), 32);
  EXPECT_EQ(scale_channels(32, 0.35f), 8);   // 11.2 -> 8
  EXPECT_EQ(scale_channels(24, 0.5f), 16);   // 12 -> 16 (round-to-nearest)
  EXPECT_EQ(scale_channels(8, 0.1f), 8);     // floor at 8
}

TEST(ModelZoo, SqueezeNetUsesConcatFireModules) {
  const nn::Graph g = make_squeezenet(tiny_config());
  int concats = 0;
  for (int i = 0; i < g.size(); ++i) {
    if (g.layer(i).kind == nn::OpKind::Concat) ++concats;
  }
  EXPECT_EQ(concats, 8);  // eight fire modules
}

TEST(ModelZoo, ResNet18HasResidualAdds) {
  const nn::Graph g = make_resnet18(tiny_config());
  int adds = 0;
  for (int i = 0; i < g.size(); ++i) {
    if (g.layer(i).kind == nn::OpKind::Add) ++adds;
  }
  EXPECT_EQ(adds, 8);  // two basic blocks per stage, four stages
}

TEST(ModelZoo, InceptionHasFourWayBranches) {
  const nn::Graph g = make_inception_v3(tiny_config());
  bool has_4way = false;
  for (int i = 0; i < g.size(); ++i) {
    if (g.layer(i).kind == nn::OpKind::Concat &&
        g.layer(i).inputs.size() == 4) {
      has_4way = true;
    }
  }
  EXPECT_TRUE(has_4way);
}

TEST(WeightInit, HeNormalVarianceMatchesFanIn) {
  nn::Graph g("t");
  const int in = g.add_input(nn::TensorShape{8, 8, 64});
  g.add_conv2d(in, 256, 3, 1, 1, nn::Activation::None);
  init_parameters(g, 9);
  const auto w = g.weights(1);
  double var = 0.0;
  for (float v : w) var += static_cast<double>(v) * v;
  var /= static_cast<double>(w.size());
  const double expected = 2.0 / (3.0 * 3.0 * 64.0);
  EXPECT_NEAR(var, expected, expected * 0.1);
}

TEST(WeightInit, SkipsLayersThatAlreadyHaveParameters) {
  nn::Graph g("t");
  const int in = g.add_input(nn::TensorShape{4, 4, 1});
  const int c = g.add_conv2d(in, 1, 1, 1, 0, nn::Activation::None);
  g.set_parameters(c, {42.0f}, {0.0f});
  init_parameters(g, 1);
  EXPECT_FLOAT_EQ(g.weights(c)[0], 42.0f);
}

}  // namespace
}  // namespace qmcu::models
