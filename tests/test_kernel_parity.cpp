// Kernel backend tier parity: the Fast tier (im2col + tiled GEMM,
// interior/border split kernels, fused sub-byte unpack) and the Simd tier
// (the same structure over the runtime-dispatched AVX2/NEON microkernels)
// must be bit-identical to the Reference loop nests over randomized
// geometries, activations, and 2/4/8-bit weight/activation ranges. Integer
// arithmetic makes this an exact contract, not a tolerance; the float fast
// conv preserves the reference accumulation order, so it is exact too. On
// hosts without a usable ISA (or under QMCU_FORCE_SCALAR) the Simd tier
// runs its scalar fallbacks, so these suites stay meaningful everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include "nn/ops/gemm_int8.h"
#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/simd/cpu_features.h"
#include "nn/ops/simd/simd_kernels.h"

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/ops/float_kernels.h"
#include "nn/ops/int8_kernels.h"
#include "nn/rng.h"
#include "patch/mcunetv2.h"
#include "patch/patch_quant_executor.h"
#include "quant/bitpack.h"
#include "quant/calibration.h"

namespace qmcu::nn::ops {
namespace {

struct RandomCase {
  TensorShape in_shape;
  Layer layer;
  QuantParams in_params;
  QuantParams out_params;
  QuantParams wparams;
  std::vector<std::int8_t> qweights;
  std::vector<std::int32_t> qbias;
  QTensor qin;
};

// Draws a random quantized conv/dwconv/pool case. `weight_bits` and
// `act_bits` in {2, 4, 8} exercise the sub-byte ranges on int8 storage.
RandomCase random_case(nn::Rng& rng, OpKind kind, int weight_bits,
                       int act_bits) {
  RandomCase c;
  const int h = 4 + static_cast<int>(rng.uniform(0, 10));
  const int w = 4 + static_cast<int>(rng.uniform(0, 10));
  const int ch = 1 + static_cast<int>(rng.uniform(0, 23));
  c.in_shape = {h, w, ch};

  Layer& l = c.layer;
  l.kind = kind;
  const int k = 1 + 2 * static_cast<int>(rng.uniform(0, 3));  // 1, 3, 5
  l.kernel_h = l.kernel_w = std::min(k, std::min(h, w));
  l.stride_h = l.stride_w = 1 + static_cast<int>(rng.uniform(0, 2));
  l.pad_h = l.pad_w = static_cast<int>(rng.uniform(0, l.kernel_h));
  const Activation acts[] = {Activation::None, Activation::ReLU,
                             Activation::ReLU6};
  l.act = acts[static_cast<int>(rng.uniform(0, 3))];
  l.out_channels = kind == OpKind::Conv2D
                       ? 1 + static_cast<int>(rng.uniform(0, 39))
                       : ch;

  c.in_params = QuantParams{0.05f, static_cast<std::int32_t>(
                                       rng.uniform(-8, 8)),
                            act_bits};
  c.out_params =
      QuantParams{0.07f, static_cast<std::int32_t>(rng.uniform(-8, 8)), 8};
  c.wparams = QuantParams{0.02f, 0, weight_bits};

  c.qin = QTensor(c.in_shape, c.in_params);
  for (std::int8_t& v : c.qin.data()) {
    v = static_cast<std::int8_t>(
        rng.uniform(c.in_params.qmin(), c.in_params.qmax() + 1));
  }

  std::int64_t wcount = 0;
  if (kind == OpKind::Conv2D) {
    wcount = static_cast<std::int64_t>(l.out_channels) * l.kernel_h *
             l.kernel_w * ch;
  } else if (kind == OpKind::DepthwiseConv2D) {
    wcount = static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * ch;
  }
  c.qweights.resize(static_cast<std::size_t>(wcount));
  for (std::int8_t& v : c.qweights) {
    v = static_cast<std::int8_t>(
        rng.uniform(c.wparams.qmin(), c.wparams.qmax() + 1));
  }
  if (wcount > 0 && rng.uniform() < 0.7) {
    c.qbias.resize(static_cast<std::size_t>(
        kind == OpKind::Conv2D ? l.out_channels : ch));
    for (std::int32_t& b : c.qbias) {
      b = static_cast<std::int32_t>(rng.uniform(-2000, 2000));
    }
  }
  return c;
}

void expect_q_identical(const QTensor& a, const QTensor& b,
                        const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(a.params(), b.params()) << what;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    ASSERT_EQ(static_cast<int>(da[i]), static_cast<int>(db[i]))
        << what << " element " << i;
  }
}

// The non-reference tiers every suite below checks against Reference.
constexpr KernelTier kFastTiers[] = {KernelTier::Fast, KernelTier::Simd};

TEST(KernelParity, Conv2dRandomizedBitExact) {
  nn::Rng rng(101);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 60; ++trial) {
    const int wb = bit_options[trial % 3];
    const int ab = bit_options[(trial / 3) % 3];
    const RandomCase c = random_case(rng, OpKind::Conv2D, wb, ab);
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                 c.qbias, c.out_params);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      const QTensor b = fast.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                    c.qbias, c.out_params);
      expect_q_identical(a, b, tier == KernelTier::Simd ? "conv2d-simd"
                                                        : "conv2d-fast");
    }
  }
}

TEST(KernelParity, DepthwiseRandomizedBitExact) {
  nn::Rng rng(202);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 40; ++trial) {
    const RandomCase c = random_case(rng, OpKind::DepthwiseConv2D,
                                     bit_options[trial % 3],
                                     bit_options[(trial / 3) % 3]);
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.depthwise_conv2d(c.qin, c.layer, c.qweights,
                                           c.wparams, c.qbias, c.out_params);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(
          a,
          fast.depthwise_conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                c.qbias, c.out_params),
          tier == KernelTier::Simd ? "depthwise-simd" : "depthwise-fast");
    }
  }
}

TEST(KernelParity, FullyConnectedRandomizedBitExact) {
  nn::Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const int features = 3 + static_cast<int>(rng.uniform(0, 120));
    const int out_c = 1 + static_cast<int>(rng.uniform(0, 22));
    Layer l;
    l.kind = OpKind::FullyConnected;
    l.out_channels = out_c;
    const QuantParams in_p{0.04f, 3, 8};
    const QuantParams out_p{0.1f, -2, 8};
    const QuantParams wp{0.015f, 0, 8};
    QTensor qin(TensorShape{1, 1, features}, in_p);
    for (std::int8_t& v : qin.data()) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int8_t> w(static_cast<std::size_t>(features) * out_c);
    for (std::int8_t& v : w) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int32_t> bias(static_cast<std::size_t>(out_c));
    for (std::int32_t& b : bias) {
      b = static_cast<std::int32_t>(rng.uniform(-3000, 3000));
    }
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.fully_connected(qin, l, w, wp, bias, out_p);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(a, fast.fully_connected(qin, l, w, wp, bias, out_p),
                         "fc");
    }
  }
}

TEST(KernelParity, PoolsRandomizedBitExact) {
  nn::Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const RandomCase c = random_case(rng, OpKind::MaxPool, 8, 8);
    KernelBackend ref(KernelTier::Reference);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(ref.max_pool(c.qin, c.layer),
                         fast.max_pool(c.qin, c.layer), "max_pool");
      expect_q_identical(ref.avg_pool(c.qin, c.layer),
                         fast.avg_pool(c.qin, c.layer), "avg_pool");
      expect_q_identical(ref.global_avg_pool(c.qin),
                         fast.global_avg_pool(c.qin), "global_avg_pool");
    }
  }
}

// The fused sub-byte path: conv over 2/4-bit packed activations must equal
// conv over the unpacked int8 tensor, on both tiers.
TEST(KernelParity, PackedConvMatchesUnpacked) {
  nn::Rng rng(505);
  for (int trial = 0; trial < 30; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const RandomCase c = random_case(rng, OpKind::Conv2D, 8, bits);
    const std::vector<std::uint8_t> packed = quant::pack(c.qin.data(), bits);

    KernelBackend ref(KernelTier::Reference);
    const QTensor base = ref.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                    c.qbias, c.out_params);
    expect_q_identical(
        base,
        ref.conv2d_packed(packed, c.in_shape, c.in_params, c.layer,
                          c.qweights, c.wparams, c.qbias, c.out_params),
        "packed-ref");
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(
          base,
          fast.conv2d_packed(packed, c.in_shape, c.in_params, c.layer,
                             c.qweights, c.wparams, c.qbias, c.out_params),
          tier == KernelTier::Simd ? "packed-simd" : "packed-fast");
    }
  }
}

// --- LUT tier --------------------------------------------------------------
// The table-lookup GEMM path (nn/ops/lut) is a third way to compute the
// exact same integers: weight-side tables indexed by sub-byte activation
// codes. Every suite here pins it bit-identically to the Reference loop
// nests and to the GEMM tiers it replaces. QMCU_FORCE_LUT/QMCU_NO_LUT are
// read live per call, so an RAII guard flips them in-process.

struct EnvGuard {
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;
  const char* name_;
};

// --- Dot-product GEMM generation -------------------------------------------
// The AVX-VNNI / NEON sdot gemm_block_i8 bodies retire 4 k-elements per
// int32 lane. VNNI's vpdpbusd is u8×s8, so that table biases activations by
// +128 (gemm_a_bias) and the backend folds the -128·Σw correction into the
// offset row; sdot is s8×s8 and needs no bias. Both must reproduce the
// scalar accumulator bit-exactly. QMCU_FORCE_NO_DOT is read live, so one
// process can pin the pair-madd generation and compare.

// Direct pinned-table check against the documented contract
//   acc[r*n+j] = Σ_k (a[r*k+kk] + gemm_a_bias) · bt[kk*n+j]
// over ragged shapes: column tails < 16 and < 8, odd k, k % 4 tails, k < 4
// (a single partly-filled dot group), and saturating ±extreme operands.
TEST(KernelParity, DotGemmBlockMatchesContract) {
  const simd::SimdKernels* table = nullptr;
  switch (simd::detected_dot_isa()) {
    case simd::DotIsa::AvxVnni:
      table = simd::avx2_vnni_kernels();
      break;
    case simd::DotIsa::NeonDot:
      table = simd::neon_dot_kernels();
      break;
    case simd::DotIsa::None:
      break;
  }
  if (table == nullptr) {
    GTEST_SKIP() << "no dot-product generation on this host (probe "
                 << simd::dot_isa_name(simd::detected_dot_isa()) << ")";
  }
  ASSERT_TRUE(table->gemm_dot);
  ASSERT_NE(table->gemm_block_i8, nullptr);
  nn::Rng rng(2323);
  for (int trial = 0; trial < 80; ++trial) {
    const int rows = 1 + static_cast<int>(rng.uniform(0, 4));
    const int n = 1 + static_cast<int>(rng.uniform(0, 70));
    const int k = 1 + static_cast<int>(rng.uniform(0, 90));
    std::vector<std::int8_t> a(static_cast<std::size_t>(rows) * k);
    std::vector<std::int8_t> w(static_cast<std::size_t>(n) * k);
    if (trial % 7 == 0) {
      // Saturating extremes: the largest per-group magnitudes vpdpbusd and
      // sdot can see (255·127 and 128·128 products).
      for (auto& v : a) v = rng.uniform() < 0.5 ? -128 : 127;
      for (auto& v : w) v = rng.uniform() < 0.5 ? -128 : 127;
    } else {
      for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
      for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int8_t> bt(w.size());
    pack_weights_kmajor(w, n, k, bt.data());
    std::vector<std::int32_t> acc(static_cast<std::size_t>(rows) * n, -7);
    table->gemm_block_i8(a.data(), bt.data(), rows, n, k, acc.data());
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < n; ++j) {
        std::int32_t want = 0;
        for (int kk = 0; kk < k; ++kk) {
          want += (static_cast<std::int32_t>(
                       a[static_cast<std::size_t>(r) * k + kk]) +
                   table->gemm_a_bias) *
                  w[static_cast<std::size_t>(j) * k + kk];
        }
        ASSERT_EQ(acc[static_cast<std::size_t>(r) * n + j], want)
            << "rows=" << rows << " n=" << n << " k=" << k << " r=" << r
            << " j=" << j;
      }
    }
  }
}

// fc shape ladder through the m == 1 panel microkernel: k below one dot
// group (k < 4), below the 16-wide panel, odd k, and past the panel width,
// across every weight/activation bit mode with and without bias — Fast and
// Simd against Reference, once with the dot generation active and once
// demoted to pair-madd (the backend snapshots the table at construction, so
// the guard wraps construction).
TEST(KernelParity, FullyConnectedLadderBitExact) {
  nn::Rng rng(2424);
  const int ks[] = {1, 2, 3, 5, 7, 12, 15, 16, 17, 31, 33, 64, 127};
  const int bit_options[] = {2, 4, 8};
  for (int pass = 0; pass < 2; ++pass) {
    std::optional<EnvGuard> no_dot;
    if (pass == 1) no_dot.emplace("QMCU_FORCE_NO_DOT", "1");
    int trial = 0;
    for (const int k : ks) {
      const int wb = bit_options[trial % 3];
      const int ab = bit_options[(trial / 3) % 3];
      ++trial;
      const int out_c = 1 + static_cast<int>(rng.uniform(0, 40));
      Layer l;
      l.kind = OpKind::FullyConnected;
      l.out_channels = out_c;
      QuantParams in_p{0.04f, 0, ab};
      in_p.zero_point =
          static_cast<std::int32_t>(rng.uniform(in_p.qmin(), in_p.qmax() + 1));
      const QuantParams out_p{
          0.1f, static_cast<std::int32_t>(rng.uniform(-8, 8)), 8};
      const QuantParams wp{0.015f, 0, wb};
      QTensor qin(TensorShape{1, 1, k}, in_p);
      for (std::int8_t& v : qin.data()) {
        v = static_cast<std::int8_t>(
            rng.uniform(in_p.qmin(), in_p.qmax() + 1));
      }
      std::vector<std::int8_t> w(static_cast<std::size_t>(k) * out_c);
      for (std::int8_t& v : w) {
        v = static_cast<std::int8_t>(rng.uniform(wp.qmin(), wp.qmax() + 1));
      }
      std::vector<std::int32_t> bias;
      if (trial % 2 == 0) {
        bias.resize(static_cast<std::size_t>(out_c));
        for (std::int32_t& b : bias) {
          b = static_cast<std::int32_t>(rng.uniform(-3000, 3000));
        }
      }
      KernelBackend ref(KernelTier::Reference);
      const QTensor want = ref.fully_connected(qin, l, w, wp, bias, out_p);
      for (const KernelTier tier : kFastTiers) {
        KernelBackend fast(tier);
        expect_q_identical(want,
                           fast.fully_connected(qin, l, w, wp, bias, out_p),
                           pass == 1 ? "fc-ladder-nodot" : "fc-ladder");
      }
    }
  }
}

// The VNNI bias-correction fold under zero-point extremes: a_zp = zp + 128
// spans 0..255, and a sign mistake in the u8 bias or the folded -128·Σw
// term shows immediately at the ±128/±127 corners. conv exercises the same
// fold through the padded im2col path.
TEST(KernelParity, DotGenerationZeroPointBitExact) {
  nn::Rng rng(2525);
  const std::int32_t zps[] = {-128, -100, -8, -1, 0, 1, 7, 100, 127};
  for (int pass = 0; pass < 2; ++pass) {
    std::optional<EnvGuard> no_dot;
    if (pass == 1) no_dot.emplace("QMCU_FORCE_NO_DOT", "1");
    for (const std::int32_t zp : zps) {
      // fc: saturating activations/weights on even trials.
      const int k = 5 + static_cast<int>(rng.uniform(0, 90));
      const int out_c = 1 + static_cast<int>(rng.uniform(0, 30));
      Layer l;
      l.kind = OpKind::FullyConnected;
      l.out_channels = out_c;
      const QuantParams in_p{0.04f, zp, 8};
      const QuantParams out_p{0.1f, -2, 8};
      const QuantParams wp{0.015f, 0, 8};
      QTensor qin(TensorShape{1, 1, k}, in_p);
      const bool saturate = zp % 2 == 0;
      for (std::int8_t& v : qin.data()) {
        v = saturate ? (rng.uniform() < 0.5 ? -128 : 127)
                     : static_cast<std::int8_t>(rng.uniform(-128, 128));
      }
      std::vector<std::int8_t> w(static_cast<std::size_t>(k) * out_c);
      for (std::int8_t& v : w) {
        v = saturate ? (rng.uniform() < 0.5 ? -128 : 127)
                     : static_cast<std::int8_t>(rng.uniform(-128, 128));
      }
      KernelBackend ref(KernelTier::Reference);
      const QTensor want = ref.fully_connected(qin, l, w, wp, {}, out_p);
      for (const KernelTier tier : kFastTiers) {
        KernelBackend fast(tier);
        expect_q_identical(want,
                           fast.fully_connected(qin, l, w, wp, {}, out_p),
                           "fc-zp");
      }

      // conv: zero-point padding flows through the same offset fold.
      RandomCase c = random_case(rng, OpKind::Conv2D, 8, 8);
      c.in_params.zero_point = zp;
      QTensor cin(c.in_shape, c.in_params);
      std::copy(c.qin.data().begin(), c.qin.data().end(), cin.data().begin());
      const QTensor cwant = ref.conv2d(cin, c.layer, c.qweights, c.wparams,
                                       c.qbias, c.out_params);
      for (const KernelTier tier : kFastTiers) {
        KernelBackend fast(tier);
        expect_q_identical(cwant,
                           fast.conv2d(cin, c.layer, c.qweights, c.wparams,
                                       c.qbias, c.out_params),
                           "conv-zp");
      }
    }
  }
}

// A conv/fc case whose input zero point is representable at `act_bits` —
// the LUT eligibility precondition (im2col pads with the zero point, which
// must survive the sub-byte encode for table indexing to be exact).
RandomCase lut_case(nn::Rng& rng, OpKind kind, int act_bits) {
  RandomCase c = random_case(rng, kind, 8, act_bits);
  c.in_params.zero_point = static_cast<std::int32_t>(
      rng.uniform(c.in_params.qmin(), c.in_params.qmax() + 1));
  QTensor q(c.in_shape, c.in_params);
  std::copy(c.qin.data().begin(), c.qin.data().end(), q.data().begin());
  c.qin = q;
  return c;
}

// pack_weights_lut + lut_build_index_tile + lut_gemm_block_scalar against
// the plain dot product, over ragged rows/n/k (odd k exercises the 2-bit
// padded tail group; > kLutChunkGroups groups exercises chunk splitting).
TEST(LutParity, ScalarBlockMatchesDotProduct) {
  nn::Rng rng(1111);
  for (int trial = 0; trial < 60; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const int n = 1 + static_cast<int>(rng.uniform(0, 40));
    const int k = 1 + static_cast<int>(rng.uniform(0, 80));
    const int rows = 1 + static_cast<int>(rng.uniform(0, lut::kLutTileM));
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    std::vector<std::int8_t> a(static_cast<std::size_t>(rows) * k);
    for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
    std::vector<std::int8_t> w(static_cast<std::size_t>(n) * k);
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform(-128, 128));

    const int groups = lut::lut_groups(k, bits);
    std::vector<std::int8_t> tables(
        static_cast<std::size_t>(lut::lut_table_bytes(n, k, bits)));
    lut::pack_weights_lut(w, n, k, bits, tables.data());
    std::vector<std::uint8_t> idx(static_cast<std::size_t>(groups) *
                                  lut::kLutTileM);
    lut::lut_build_index_tile(a.data(), rows, k, bits, idx.data());
    std::vector<std::int32_t> acc(static_cast<std::size_t>(rows) * n, -7);
    lut::lut_gemm_block_scalar(idx.data(), tables.data(), rows, n, groups,
                               acc.data());
    for (int r = 0; r < rows; ++r) {
      for (int j = 0; j < n; ++j) {
        std::int32_t want = 0;
        for (int kk = 0; kk < k; ++kk) {
          want += static_cast<std::int32_t>(a[static_cast<std::size_t>(r) * k +
                                              kk]) *
                  w[static_cast<std::size_t>(j) * k + kk];
        }
        ASSERT_EQ(acc[static_cast<std::size_t>(r) * n + j], want)
            << "bits=" << bits << " r=" << r << " j=" << j << " k=" << k;
      }
    }
  }
}

// The dispatched vector body (vpshufb / vqtbl1q) against the scalar core on
// the same tiles — the SimdKernels bit-exactness contract. Skipped (by
// running scalar-vs-scalar) on hosts whose table has no LUT entry.
TEST(LutParity, VectorBlockMatchesScalar) {
  const simd::SimdKernels* table = simd::kernels();
  const auto vector_block =
      table != nullptr ? table->lut_gemm_block : nullptr;
  if (vector_block == nullptr) {
    GTEST_SKIP() << "no vector LUT body on this host (isa "
                 << simd::isa_name(simd::detected_isa()) << ")";
  }
  nn::Rng rng(1212);
  for (int trial = 0; trial < 60; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const int n = 1 + static_cast<int>(rng.uniform(0, 40));
    const int k = 1 + static_cast<int>(rng.uniform(0, 100));
    const int rows = 1 + static_cast<int>(rng.uniform(0, lut::kLutTileM));
    std::vector<std::int8_t> w(static_cast<std::size_t>(n) * k);
    for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    const int groups = lut::lut_groups(k, bits);
    std::vector<std::int8_t> tables(
        static_cast<std::size_t>(lut::lut_table_bytes(n, k, bits)));
    lut::pack_weights_lut(w, n, k, bits, tables.data());
    std::vector<std::uint8_t> idx(static_cast<std::size_t>(groups) *
                                  lut::kLutTileM);
    for (auto& v : idx) v = static_cast<std::uint8_t>(rng.uniform(0, 16));
    // Lanes beyond `rows` are zero by the index-tile contract.
    for (int g = 0; g < groups; ++g) {
      for (int r = rows; r < lut::kLutTileM; ++r) {
        idx[static_cast<std::size_t>(g) * lut::kLutTileM + r] = 0;
      }
    }
    std::vector<std::int32_t> want(static_cast<std::size_t>(rows) * n, 0);
    std::vector<std::int32_t> got(want.size(), 0);
    lut::lut_gemm_block_scalar(idx.data(), tables.data(), rows, n, groups,
                               want.data());
    vector_block(idx.data(), tables.data(), rows, n, groups, got.data());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "bits=" << bits << " n=" << n << " k=" << k << " rows=" << rows
          << " lane " << i;
    }
  }
}

// Forced-on LUT conv (unpacked and packed inputs) against Reference across
// 2/4-bit activations, randomized geometries (odd k tails, channel/group
// sweeps), on both non-reference tiers — and forced-off must match too.
TEST(LutParity, Conv2dForcedBitExact) {
  nn::Rng rng(1313);
  for (int trial = 0; trial < 40; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const RandomCase c = lut_case(rng, OpKind::Conv2D, bits);
    const std::vector<std::uint8_t> packed = quant::pack(c.qin.data(), bits);
    KernelBackend ref(KernelTier::Reference);
    const QTensor want = ref.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                    c.qbias, c.out_params);
    for (const char* env : {"QMCU_FORCE_LUT", "QMCU_NO_LUT"}) {
      const EnvGuard guard(env, "1");
      for (const KernelTier tier : kFastTiers) {
        KernelBackend fast(tier);
        expect_q_identical(want,
                           fast.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                       c.qbias, c.out_params),
                           env);
        expect_q_identical(
            want,
            fast.conv2d_packed(packed, c.in_shape, c.in_params, c.layer,
                               c.qweights, c.wparams, c.qbias, c.out_params),
            env);
      }
    }
  }
}

// Forced-on LUT fully-connected against Reference: 2-bit (the Auto
// heuristic's fc mode) and 4-bit (reachable only when forced), k below and
// above the k >= 64 threshold, odd k.
TEST(LutParity, FullyConnectedForcedBitExact) {
  nn::Rng rng(1414);
  for (int trial = 0; trial < 40; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const int features = 3 + static_cast<int>(rng.uniform(0, 160));
    const int out_c = 1 + static_cast<int>(rng.uniform(0, 22));
    Layer l;
    l.kind = OpKind::FullyConnected;
    l.out_channels = out_c;
    const QuantParams in_p{
        0.04f,
        static_cast<std::int32_t>(rng.uniform(-(1 << (bits - 1)),
                                              1 << (bits - 1))),
        bits};
    const QuantParams out_p{0.1f, -2, 8};
    const QuantParams wp{0.015f, 0, 8};
    QTensor qin(TensorShape{1, 1, features}, in_p);
    for (std::int8_t& v : qin.data()) {
      v = static_cast<std::int8_t>(rng.uniform(in_p.qmin(), in_p.qmax() + 1));
    }
    std::vector<std::int8_t> w(static_cast<std::size_t>(features) * out_c);
    for (std::int8_t& v : w) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int32_t> bias(static_cast<std::size_t>(out_c));
    for (std::int32_t& b : bias) {
      b = static_cast<std::int32_t>(rng.uniform(-3000, 3000));
    }
    KernelBackend ref(KernelTier::Reference);
    const QTensor want = ref.fully_connected(qin, l, w, wp, bias, out_p);
    const EnvGuard guard("QMCU_FORCE_LUT", "1");
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(want, fast.fully_connected(qin, l, w, wp, bias, out_p),
                         "fc-lut");
    }
  }
}

// The Simd slice requantizer (ElementRequantizer row kernel) must round
// exactly like the scalar loop across scale ratios above and below 1,
// shifted zero points, and sub-byte targets.
TEST(KernelParity, RequantizeRandomizedBitExact) {
  nn::Rng rng(808);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 60; ++trial) {
    const int h = 1 + static_cast<int>(rng.uniform(0, 12));
    const int w = 1 + static_cast<int>(rng.uniform(0, 12));
    const int ch = 1 + static_cast<int>(rng.uniform(0, 33));
    const QuantParams in_p{
        static_cast<float>(rng.uniform(0.01, 0.2)),
        static_cast<std::int32_t>(rng.uniform(-20, 20)),
        bit_options[trial % 3]};
    const QuantParams out_p{
        static_cast<float>(rng.uniform(0.01, 0.2)),
        static_cast<std::int32_t>(rng.uniform(-20, 20)),
        bit_options[(trial / 3) % 3]};
    QTensor qin(TensorShape{h, w, ch}, in_p);
    for (std::int8_t& v : qin.data()) {
      v = static_cast<std::int8_t>(
          rng.uniform(in_p.qmin(), in_p.qmax() + 1));
    }
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.requantize(qin, out_p);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(a, fast.requantize(qin, out_p),
                         tier == KernelTier::Simd ? "requantize-simd"
                                                  : "requantize-fast");
    }
  }
}

// The Simd unpack body (AVX2/NEON whole-byte expander) and the scalar loop
// against a straight per-field decode of the bitpack wire format, over
// randomized [first, first + count) windows so the head/vector-body/tail
// splits all get exercised. The table is passed explicitly — the caller's
// tier decides which body runs, never a global.
TEST(KernelParity, UnpackIntoMatchesFieldDecode) {
  nn::Rng rng(909);
  for (int trial = 0; trial < 40; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const int per_byte = 8 / bits;
    const std::int64_t total = 64 + static_cast<std::int64_t>(
                                        rng.uniform(0, 2000));
    std::vector<std::int8_t> values(static_cast<std::size_t>(total));
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (auto& v : values) {
      v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
    }
    const std::vector<std::uint8_t> packed = quant::pack(values, bits);

    const std::int64_t first = static_cast<std::int64_t>(
        rng.uniform(0, static_cast<double>(total)));
    const std::int64_t count = static_cast<std::int64_t>(
        rng.uniform(0, static_cast<double>(total - first + 1)));
    for (const simd::SimdKernels* table :
         {static_cast<const simd::SimdKernels*>(nullptr), simd::kernels()}) {
      std::vector<std::int8_t> got(static_cast<std::size_t>(count), 99);
      quant::unpack_into(packed, first, count, bits, got.data(), table);
      for (std::int64_t i = 0; i < count; ++i) {
        // Independent field decode straight off the wire bytes.
        const std::int64_t e = first + i;
        const std::uint8_t byte =
            packed[static_cast<std::size_t>(e / per_byte)];
        std::uint8_t raw = static_cast<std::uint8_t>(
            (byte >> (static_cast<int>(e % per_byte) * bits)) &
            ((1u << bits) - 1));
        if (raw & (1u << (bits - 1))) {
          raw = static_cast<std::uint8_t>(raw | ~((1u << bits) - 1));
        }
        ASSERT_EQ(static_cast<int>(got[static_cast<std::size_t>(i)]),
                  static_cast<int>(static_cast<std::int8_t>(raw)))
            << "bits " << bits << " element " << i << " table "
            << (table != nullptr ? table->name : "scalar") << " (isa "
            << simd::isa_name(simd::detected_isa()) << ")";
      }
    }
  }
}

// The cache-blocked k-major transpose must produce byte-identical panels
// (and f32 panels) to the naive row-by-row transpose, including ragged
// edges where n or k is not a multiple of the 16-wide tile.
TEST(KernelParity, BlockedWeightPackIdenticalPanels) {
  nn::Rng rng(1010);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform(0, 70));
    const int k = 1 + static_cast<int>(rng.uniform(0, 70));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n) * k);
    for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    std::vector<float> bf(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      bf[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }

    std::vector<std::int8_t> bt(b.size(), 0);
    pack_weights_kmajor(b, n, k, bt.data());
    std::vector<float> btf(b.size(), 0.0f);
    pack_weights_kmajor_f32(bf, n, k, btf.data());
    for (int row = 0; row < n; ++row) {
      for (int kk = 0; kk < k; ++kk) {
        const std::size_t dst = static_cast<std::size_t>(kk) * n + row;
        const std::size_t src = static_cast<std::size_t>(row) * k + kk;
        ASSERT_EQ(bt[dst], b[src]) << "n=" << n << " k=" << k;
        ASSERT_EQ(btf[dst], bf[src]) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(KernelParity, FloatConvBitExact) {
  nn::Rng rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    const int h = 4 + static_cast<int>(rng.uniform(0, 10));
    const int w = 4 + static_cast<int>(rng.uniform(0, 10));
    const int ch = 1 + static_cast<int>(rng.uniform(0, 15));
    const int out_c = 1 + static_cast<int>(rng.uniform(0, 39));
    Layer l;
    l.kind = OpKind::Conv2D;
    l.kernel_h = l.kernel_w = 1 + 2 * static_cast<int>(rng.uniform(0, 2));
    l.stride_h = l.stride_w = 1 + static_cast<int>(rng.uniform(0, 2));
    l.pad_h = l.pad_w = static_cast<int>(rng.uniform(0, l.kernel_h));
    l.out_channels = out_c;
    l.act = Activation::ReLU;
    Tensor in(TensorShape{h, w, ch});
    for (float& v : in.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<float> weights(static_cast<std::size_t>(out_c) * l.kernel_h *
                               l.kernel_w * ch);
    for (float& v : weights) v = static_cast<float>(rng.normal(0.0, 0.2));
    std::vector<float> bias(static_cast<std::size_t>(out_c));
    for (float& v : bias) v = static_cast<float>(rng.uniform(-0.3, 0.3));

    KernelBackend fast(KernelTier::Fast);
    const Tensor ref = conv2d_f32(in, l, weights, bias);
    const Tensor got = fast.conv2d_f32(in, l, weights, bias);
    ASSERT_EQ(ref.shape(), got.shape());
    for (std::size_t i = 0; i < ref.data().size(); ++i) {
      ASSERT_EQ(ref.data()[i], got.data()[i]) << "element " << i;
    }
  }
}

// Steady-state inference must not grow the arena: after one run the scratch
// footprint is fixed.
TEST(ScratchArena, FootprintStabilizesAcrossRuns) {
  nn::Rng rng(707);
  const RandomCase c = random_case(rng, OpKind::Conv2D, 8, 8);
  KernelBackend fast(KernelTier::Fast);
  (void)fast.conv2d(c.qin, c.layer, c.qweights, c.wparams, c.qbias,
                    c.out_params);
  const std::size_t after_first = fast.arena().footprint_bytes();
  EXPECT_GT(after_first, 0u);
  for (int i = 0; i < 5; ++i) {
    (void)fast.conv2d(c.qin, c.layer, c.qweights, c.wparams, c.qbias,
                      c.out_params);
  }
  EXPECT_EQ(fast.arena().footprint_bytes(), after_first);
}

}  // namespace
}  // namespace qmcu::nn::ops

// ---------------------------------------------------------------------------
// Executor-level regression: switching the backend tier must not change any
// executor output — uniform int8 and the mixed-precision patch runtime.
namespace qmcu::patch {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

nn::Graph small_mbv2() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

TEST(BackendRegression, QuantExecutorTierInvariant) {
  const nn::Graph g = small_mbv2();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 21)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::QuantExecutor ref(g, cfg, nn::ops::KernelTier::Reference);
  const nn::QuantExecutor fast(g, cfg, nn::ops::KernelTier::Fast);
  const nn::QuantExecutor simd(g, cfg, nn::ops::KernelTier::Simd);
  const nn::Tensor in = random_input(g.shape(0), 22);
  const nn::QTensor want = ref.run(in);
  expect_q_identical(want, fast.run(in));
  expect_q_identical(want, simd.run(in));
}

TEST(BackendRegression, PatchQuantExecutorMixedModeTierInvariant) {
  const nn::Graph g = small_mbv2();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);

  const PatchQuantExecutor ref(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                               nn::ops::KernelTier::Reference);
  const PatchQuantExecutor fast(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Fast);
  const PatchQuantExecutor simd(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Simd);
  const nn::Tensor in = ds.image(11);
  const nn::QTensor want = ref.run(in);
  expect_q_identical(want, fast.run(in));
  expect_q_identical(want, simd.run(in));
}

// Same executors with the LUT tier forced on for every eligible layer:
// whole-model outputs must not move, including the mixed-precision patch
// runtime whose sub-byte branch stages actually take the LUT path.
TEST(BackendRegression, ExecutorsTierInvariantUnderForcedLut) {
  ::setenv("QMCU_FORCE_LUT", "1", 1);
  const nn::Graph g = small_mbv2();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  // Uniform int8 executor: LUT never fires (8-bit inputs), but forcing the
  // env must stay inert.
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::QuantExecutor qref(g, cfg, nn::ops::KernelTier::Reference);
  const nn::QuantExecutor qsimd(g, cfg, nn::ops::KernelTier::Simd);
  const nn::Tensor qin = random_input(g.shape(0), 31);
  expect_q_identical(qref.run(qin), qsimd.run(qin));

  // Mixed-precision patch runtime: sub-byte branches dispatch to LUT.
  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);
  const PatchQuantExecutor ref(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                               nn::ops::KernelTier::Reference);
  const PatchQuantExecutor fast(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Fast);
  const PatchQuantExecutor simd(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Simd);
  const nn::Tensor in = ds.image(13);
  const nn::QTensor want = ref.run(in);
  expect_q_identical(want, fast.run(in));
  expect_q_identical(want, simd.run(in));
  ::unsetenv("QMCU_FORCE_LUT");
}

// Demoting the dot-product GEMM generation must not change any executor
// output. The backend snapshots its kernel table at construction, so one
// executor is built with QMCU_FORCE_NO_DOT pinned and one without; on hosts
// with no dot generation both resolve to the same table and the test
// degenerates to self-comparison.
TEST(BackendRegression, QuantExecutorDotGenerationInvariant) {
  const nn::Graph g = small_mbv2();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 41)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::QuantExecutor dot(g, cfg, nn::ops::KernelTier::Simd);
  ::setenv("QMCU_FORCE_NO_DOT", "1", 1);
  const nn::QuantExecutor nodot(g, cfg, nn::ops::KernelTier::Simd);
  const nn::Tensor in = random_input(g.shape(0), 42);
  const nn::QTensor want = nodot.run(in);
  ::unsetenv("QMCU_FORCE_NO_DOT");
  expect_q_identical(want, dot.run(in));
}

TEST(BackendRegression, PatchExecutorFloatTierInvariant) {
  const nn::Graph g = small_mbv2();
  const PatchSpec spec = plan_mcunetv2(g, {2, 4});
  const PatchExecutor ref(g, build_patch_plan(g, spec),
                          nn::ops::KernelTier::Reference);
  const nn::Tensor in = random_input(g.shape(0), 23);
  const nn::Tensor a = ref.run(in);
  for (const nn::ops::KernelTier tier :
       {nn::ops::KernelTier::Fast, nn::ops::KernelTier::Simd}) {
    const PatchExecutor fast(g, build_patch_plan(g, spec), tier);
    const nn::Tensor b = fast.run(in);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.data().size(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
    }
  }
}

}  // namespace
}  // namespace qmcu::patch
