// Kernel backend tier parity: the Fast tier (im2col + tiled GEMM,
// interior/border split kernels, fused sub-byte unpack) and the Simd tier
// (the same structure over the runtime-dispatched AVX2/NEON microkernels)
// must be bit-identical to the Reference loop nests over randomized
// geometries, activations, and 2/4/8-bit weight/activation ranges. Integer
// arithmetic makes this an exact contract, not a tolerance; the float fast
// conv preserves the reference accumulation order, so it is exact too. On
// hosts without a usable ISA (or under QMCU_FORCE_SCALAR) the Simd tier
// runs its scalar fallbacks, so these suites stay meaningful everywhere.
#include <gtest/gtest.h>

#include <vector>

#include "nn/ops/gemm_int8.h"
#include "nn/ops/simd/cpu_features.h"
#include "nn/ops/simd/simd_kernels.h"

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/ops/float_kernels.h"
#include "nn/ops/int8_kernels.h"
#include "nn/rng.h"
#include "patch/mcunetv2.h"
#include "patch/patch_quant_executor.h"
#include "quant/bitpack.h"
#include "quant/calibration.h"

namespace qmcu::nn::ops {
namespace {

struct RandomCase {
  TensorShape in_shape;
  Layer layer;
  QuantParams in_params;
  QuantParams out_params;
  QuantParams wparams;
  std::vector<std::int8_t> qweights;
  std::vector<std::int32_t> qbias;
  QTensor qin;
};

// Draws a random quantized conv/dwconv/pool case. `weight_bits` and
// `act_bits` in {2, 4, 8} exercise the sub-byte ranges on int8 storage.
RandomCase random_case(nn::Rng& rng, OpKind kind, int weight_bits,
                       int act_bits) {
  RandomCase c;
  const int h = 4 + static_cast<int>(rng.uniform(0, 10));
  const int w = 4 + static_cast<int>(rng.uniform(0, 10));
  const int ch = 1 + static_cast<int>(rng.uniform(0, 23));
  c.in_shape = {h, w, ch};

  Layer& l = c.layer;
  l.kind = kind;
  const int k = 1 + 2 * static_cast<int>(rng.uniform(0, 3));  // 1, 3, 5
  l.kernel_h = l.kernel_w = std::min(k, std::min(h, w));
  l.stride_h = l.stride_w = 1 + static_cast<int>(rng.uniform(0, 2));
  l.pad_h = l.pad_w = static_cast<int>(rng.uniform(0, l.kernel_h));
  const Activation acts[] = {Activation::None, Activation::ReLU,
                             Activation::ReLU6};
  l.act = acts[static_cast<int>(rng.uniform(0, 3))];
  l.out_channels = kind == OpKind::Conv2D
                       ? 1 + static_cast<int>(rng.uniform(0, 39))
                       : ch;

  c.in_params = QuantParams{0.05f, static_cast<std::int32_t>(
                                       rng.uniform(-8, 8)),
                            act_bits};
  c.out_params =
      QuantParams{0.07f, static_cast<std::int32_t>(rng.uniform(-8, 8)), 8};
  c.wparams = QuantParams{0.02f, 0, weight_bits};

  c.qin = QTensor(c.in_shape, c.in_params);
  for (std::int8_t& v : c.qin.data()) {
    v = static_cast<std::int8_t>(
        rng.uniform(c.in_params.qmin(), c.in_params.qmax() + 1));
  }

  std::int64_t wcount = 0;
  if (kind == OpKind::Conv2D) {
    wcount = static_cast<std::int64_t>(l.out_channels) * l.kernel_h *
             l.kernel_w * ch;
  } else if (kind == OpKind::DepthwiseConv2D) {
    wcount = static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * ch;
  }
  c.qweights.resize(static_cast<std::size_t>(wcount));
  for (std::int8_t& v : c.qweights) {
    v = static_cast<std::int8_t>(
        rng.uniform(c.wparams.qmin(), c.wparams.qmax() + 1));
  }
  if (wcount > 0 && rng.uniform() < 0.7) {
    c.qbias.resize(static_cast<std::size_t>(
        kind == OpKind::Conv2D ? l.out_channels : ch));
    for (std::int32_t& b : c.qbias) {
      b = static_cast<std::int32_t>(rng.uniform(-2000, 2000));
    }
  }
  return c;
}

void expect_q_identical(const QTensor& a, const QTensor& b,
                        const char* what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(a.params(), b.params()) << what;
  const auto da = a.data();
  const auto db = b.data();
  for (std::size_t i = 0; i < da.size(); ++i) {
    ASSERT_EQ(static_cast<int>(da[i]), static_cast<int>(db[i]))
        << what << " element " << i;
  }
}

// The non-reference tiers every suite below checks against Reference.
constexpr KernelTier kFastTiers[] = {KernelTier::Fast, KernelTier::Simd};

TEST(KernelParity, Conv2dRandomizedBitExact) {
  nn::Rng rng(101);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 60; ++trial) {
    const int wb = bit_options[trial % 3];
    const int ab = bit_options[(trial / 3) % 3];
    const RandomCase c = random_case(rng, OpKind::Conv2D, wb, ab);
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                 c.qbias, c.out_params);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      const QTensor b = fast.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                    c.qbias, c.out_params);
      expect_q_identical(a, b, tier == KernelTier::Simd ? "conv2d-simd"
                                                        : "conv2d-fast");
    }
  }
}

TEST(KernelParity, DepthwiseRandomizedBitExact) {
  nn::Rng rng(202);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 40; ++trial) {
    const RandomCase c = random_case(rng, OpKind::DepthwiseConv2D,
                                     bit_options[trial % 3],
                                     bit_options[(trial / 3) % 3]);
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.depthwise_conv2d(c.qin, c.layer, c.qweights,
                                           c.wparams, c.qbias, c.out_params);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(
          a,
          fast.depthwise_conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                c.qbias, c.out_params),
          tier == KernelTier::Simd ? "depthwise-simd" : "depthwise-fast");
    }
  }
}

TEST(KernelParity, FullyConnectedRandomizedBitExact) {
  nn::Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    const int features = 3 + static_cast<int>(rng.uniform(0, 120));
    const int out_c = 1 + static_cast<int>(rng.uniform(0, 22));
    Layer l;
    l.kind = OpKind::FullyConnected;
    l.out_channels = out_c;
    const QuantParams in_p{0.04f, 3, 8};
    const QuantParams out_p{0.1f, -2, 8};
    const QuantParams wp{0.015f, 0, 8};
    QTensor qin(TensorShape{1, 1, features}, in_p);
    for (std::int8_t& v : qin.data()) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int8_t> w(static_cast<std::size_t>(features) * out_c);
    for (std::int8_t& v : w) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    std::vector<std::int32_t> bias(static_cast<std::size_t>(out_c));
    for (std::int32_t& b : bias) {
      b = static_cast<std::int32_t>(rng.uniform(-3000, 3000));
    }
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.fully_connected(qin, l, w, wp, bias, out_p);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(a, fast.fully_connected(qin, l, w, wp, bias, out_p),
                         "fc");
    }
  }
}

TEST(KernelParity, PoolsRandomizedBitExact) {
  nn::Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const RandomCase c = random_case(rng, OpKind::MaxPool, 8, 8);
    KernelBackend ref(KernelTier::Reference);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(ref.max_pool(c.qin, c.layer),
                         fast.max_pool(c.qin, c.layer), "max_pool");
      expect_q_identical(ref.avg_pool(c.qin, c.layer),
                         fast.avg_pool(c.qin, c.layer), "avg_pool");
      expect_q_identical(ref.global_avg_pool(c.qin),
                         fast.global_avg_pool(c.qin), "global_avg_pool");
    }
  }
}

// The fused sub-byte path: conv over 2/4-bit packed activations must equal
// conv over the unpacked int8 tensor, on both tiers.
TEST(KernelParity, PackedConvMatchesUnpacked) {
  nn::Rng rng(505);
  for (int trial = 0; trial < 30; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const RandomCase c = random_case(rng, OpKind::Conv2D, 8, bits);
    const std::vector<std::uint8_t> packed = quant::pack(c.qin.data(), bits);

    KernelBackend ref(KernelTier::Reference);
    const QTensor base = ref.conv2d(c.qin, c.layer, c.qweights, c.wparams,
                                    c.qbias, c.out_params);
    expect_q_identical(
        base,
        ref.conv2d_packed(packed, c.in_shape, c.in_params, c.layer,
                          c.qweights, c.wparams, c.qbias, c.out_params),
        "packed-ref");
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(
          base,
          fast.conv2d_packed(packed, c.in_shape, c.in_params, c.layer,
                             c.qweights, c.wparams, c.qbias, c.out_params),
          tier == KernelTier::Simd ? "packed-simd" : "packed-fast");
    }
  }
}

// The Simd slice requantizer (ElementRequantizer row kernel) must round
// exactly like the scalar loop across scale ratios above and below 1,
// shifted zero points, and sub-byte targets.
TEST(KernelParity, RequantizeRandomizedBitExact) {
  nn::Rng rng(808);
  const int bit_options[] = {2, 4, 8};
  for (int trial = 0; trial < 60; ++trial) {
    const int h = 1 + static_cast<int>(rng.uniform(0, 12));
    const int w = 1 + static_cast<int>(rng.uniform(0, 12));
    const int ch = 1 + static_cast<int>(rng.uniform(0, 33));
    const QuantParams in_p{
        static_cast<float>(rng.uniform(0.01, 0.2)),
        static_cast<std::int32_t>(rng.uniform(-20, 20)),
        bit_options[trial % 3]};
    const QuantParams out_p{
        static_cast<float>(rng.uniform(0.01, 0.2)),
        static_cast<std::int32_t>(rng.uniform(-20, 20)),
        bit_options[(trial / 3) % 3]};
    QTensor qin(TensorShape{h, w, ch}, in_p);
    for (std::int8_t& v : qin.data()) {
      v = static_cast<std::int8_t>(
          rng.uniform(in_p.qmin(), in_p.qmax() + 1));
    }
    KernelBackend ref(KernelTier::Reference);
    const QTensor a = ref.requantize(qin, out_p);
    for (const KernelTier tier : kFastTiers) {
      KernelBackend fast(tier);
      expect_q_identical(a, fast.requantize(qin, out_p),
                         tier == KernelTier::Simd ? "requantize-simd"
                                                  : "requantize-fast");
    }
  }
}

// The Simd unpack body (AVX2/NEON whole-byte expander) and the scalar loop
// against a straight per-field decode of the bitpack wire format, over
// randomized [first, first + count) windows so the head/vector-body/tail
// splits all get exercised. The table is passed explicitly — the caller's
// tier decides which body runs, never a global.
TEST(KernelParity, UnpackIntoMatchesFieldDecode) {
  nn::Rng rng(909);
  for (int trial = 0; trial < 40; ++trial) {
    const int bits = trial % 2 == 0 ? 4 : 2;
    const int per_byte = 8 / bits;
    const std::int64_t total = 64 + static_cast<std::int64_t>(
                                        rng.uniform(0, 2000));
    std::vector<std::int8_t> values(static_cast<std::size_t>(total));
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    for (auto& v : values) {
      v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
    }
    const std::vector<std::uint8_t> packed = quant::pack(values, bits);

    const std::int64_t first = static_cast<std::int64_t>(
        rng.uniform(0, static_cast<double>(total)));
    const std::int64_t count = static_cast<std::int64_t>(
        rng.uniform(0, static_cast<double>(total - first + 1)));
    for (const simd::SimdKernels* table :
         {static_cast<const simd::SimdKernels*>(nullptr), simd::kernels()}) {
      std::vector<std::int8_t> got(static_cast<std::size_t>(count), 99);
      quant::unpack_into(packed, first, count, bits, got.data(), table);
      for (std::int64_t i = 0; i < count; ++i) {
        // Independent field decode straight off the wire bytes.
        const std::int64_t e = first + i;
        const std::uint8_t byte =
            packed[static_cast<std::size_t>(e / per_byte)];
        std::uint8_t raw = static_cast<std::uint8_t>(
            (byte >> (static_cast<int>(e % per_byte) * bits)) &
            ((1u << bits) - 1));
        if (raw & (1u << (bits - 1))) {
          raw = static_cast<std::uint8_t>(raw | ~((1u << bits) - 1));
        }
        ASSERT_EQ(static_cast<int>(got[static_cast<std::size_t>(i)]),
                  static_cast<int>(static_cast<std::int8_t>(raw)))
            << "bits " << bits << " element " << i << " table "
            << (table != nullptr ? table->name : "scalar") << " (isa "
            << simd::isa_name(simd::detected_isa()) << ")";
      }
    }
  }
}

// The cache-blocked k-major transpose must produce byte-identical panels
// (and f32 panels) to the naive row-by-row transpose, including ragged
// edges where n or k is not a multiple of the 16-wide tile.
TEST(KernelParity, BlockedWeightPackIdenticalPanels) {
  nn::Rng rng(1010);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 1 + static_cast<int>(rng.uniform(0, 70));
    const int k = 1 + static_cast<int>(rng.uniform(0, 70));
    std::vector<std::int8_t> b(static_cast<std::size_t>(n) * k);
    for (auto& v : b) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    std::vector<float> bf(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
      bf[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }

    std::vector<std::int8_t> bt(b.size(), 0);
    pack_weights_kmajor(b, n, k, bt.data());
    std::vector<float> btf(b.size(), 0.0f);
    pack_weights_kmajor_f32(bf, n, k, btf.data());
    for (int row = 0; row < n; ++row) {
      for (int kk = 0; kk < k; ++kk) {
        const std::size_t dst = static_cast<std::size_t>(kk) * n + row;
        const std::size_t src = static_cast<std::size_t>(row) * k + kk;
        ASSERT_EQ(bt[dst], b[src]) << "n=" << n << " k=" << k;
        ASSERT_EQ(btf[dst], bf[src]) << "n=" << n << " k=" << k;
      }
    }
  }
}

TEST(KernelParity, FloatConvBitExact) {
  nn::Rng rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    const int h = 4 + static_cast<int>(rng.uniform(0, 10));
    const int w = 4 + static_cast<int>(rng.uniform(0, 10));
    const int ch = 1 + static_cast<int>(rng.uniform(0, 15));
    const int out_c = 1 + static_cast<int>(rng.uniform(0, 39));
    Layer l;
    l.kind = OpKind::Conv2D;
    l.kernel_h = l.kernel_w = 1 + 2 * static_cast<int>(rng.uniform(0, 2));
    l.stride_h = l.stride_w = 1 + static_cast<int>(rng.uniform(0, 2));
    l.pad_h = l.pad_w = static_cast<int>(rng.uniform(0, l.kernel_h));
    l.out_channels = out_c;
    l.act = Activation::ReLU;
    Tensor in(TensorShape{h, w, ch});
    for (float& v : in.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
    std::vector<float> weights(static_cast<std::size_t>(out_c) * l.kernel_h *
                               l.kernel_w * ch);
    for (float& v : weights) v = static_cast<float>(rng.normal(0.0, 0.2));
    std::vector<float> bias(static_cast<std::size_t>(out_c));
    for (float& v : bias) v = static_cast<float>(rng.uniform(-0.3, 0.3));

    KernelBackend fast(KernelTier::Fast);
    const Tensor ref = conv2d_f32(in, l, weights, bias);
    const Tensor got = fast.conv2d_f32(in, l, weights, bias);
    ASSERT_EQ(ref.shape(), got.shape());
    for (std::size_t i = 0; i < ref.data().size(); ++i) {
      ASSERT_EQ(ref.data()[i], got.data()[i]) << "element " << i;
    }
  }
}

// Steady-state inference must not grow the arena: after one run the scratch
// footprint is fixed.
TEST(ScratchArena, FootprintStabilizesAcrossRuns) {
  nn::Rng rng(707);
  const RandomCase c = random_case(rng, OpKind::Conv2D, 8, 8);
  KernelBackend fast(KernelTier::Fast);
  (void)fast.conv2d(c.qin, c.layer, c.qweights, c.wparams, c.qbias,
                    c.out_params);
  const std::size_t after_first = fast.arena().footprint_bytes();
  EXPECT_GT(after_first, 0u);
  for (int i = 0; i < 5; ++i) {
    (void)fast.conv2d(c.qin, c.layer, c.qweights, c.wparams, c.qbias,
                      c.out_params);
  }
  EXPECT_EQ(fast.arena().footprint_bytes(), after_first);
}

}  // namespace
}  // namespace qmcu::nn::ops

// ---------------------------------------------------------------------------
// Executor-level regression: switching the backend tier must not change any
// executor output — uniform int8 and the mixed-precision patch runtime.
namespace qmcu::patch {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

nn::Graph small_mbv2() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

TEST(BackendRegression, QuantExecutorTierInvariant) {
  const nn::Graph g = small_mbv2();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 21)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::QuantExecutor ref(g, cfg, nn::ops::KernelTier::Reference);
  const nn::QuantExecutor fast(g, cfg, nn::ops::KernelTier::Fast);
  const nn::QuantExecutor simd(g, cfg, nn::ops::KernelTier::Simd);
  const nn::Tensor in = random_input(g.shape(0), 22);
  const nn::QTensor want = ref.run(in);
  expect_q_identical(want, fast.run(in));
  expect_q_identical(want, simd.run(in));
}

TEST(BackendRegression, PatchQuantExecutorMixedModeTierInvariant) {
  const nn::Graph g = small_mbv2();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);

  const PatchQuantExecutor ref(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                               nn::ops::KernelTier::Reference);
  const PatchQuantExecutor fast(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Fast);
  const PatchQuantExecutor simd(g, plan.patch_plan, deploy_cfg, branch_cfgs,
                                nn::ops::KernelTier::Simd);
  const nn::Tensor in = ds.image(11);
  const nn::QTensor want = ref.run(in);
  expect_q_identical(want, fast.run(in));
  expect_q_identical(want, simd.run(in));
}

TEST(BackendRegression, PatchExecutorFloatTierInvariant) {
  const nn::Graph g = small_mbv2();
  const PatchSpec spec = plan_mcunetv2(g, {2, 4});
  const PatchExecutor ref(g, build_patch_plan(g, spec),
                          nn::ops::KernelTier::Reference);
  const nn::Tensor in = random_input(g.shape(0), 23);
  const nn::Tensor a = ref.run(in);
  for (const nn::ops::KernelTier tier :
       {nn::ops::KernelTier::Fast, nn::ops::KernelTier::Simd}) {
    const PatchExecutor fast(g, build_patch_plan(g, spec), tier);
    const nn::Tensor b = fast.run(in);
    ASSERT_EQ(a.shape(), b.shape());
    for (std::size_t i = 0; i < a.data().size(); ++i) {
      ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
    }
  }
}

}  // namespace
}  // namespace qmcu::patch
