// Parallel patch execution (compiled_patch_model.h + worker_pool.h) must be
// bit-identical to the sequential path for every worker count, across the
// model zoo and every quant mode (float, int8, sub-byte, mixed per-branch);
// the tiled region merge must be completion-order independent; the
// per-worker arena layout must keep slices and the shared region disjoint;
// and the thread-affinity guard must catch a KernelBackend shared across
// threads.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/rng.h"
#include "nn/runtime/worker_pool.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "patch/region_pool.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

void expect_f_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

// --- float parity across the zoo --------------------------------------------

TEST(ParallelPatch, FloatBitExactAcrossZooAndWorkerCounts) {
  for (const char* name : {"mobilenetv2", "mcunet", "mnasnet"}) {
    const nn::Graph g = models::make_model(name, small_cfg());
    const patch::PatchPlan plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
    const patch::CompiledPatchModel model(g, plan);
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const nn::Tensor in = random_input(g.shape(0), seed);
      const nn::Tensor expect = model.run(in);
      for (const int workers : {2, 3, 4}) {
        nn::WorkerPool pool(workers);
        expect_f_identical(model.run(in, &pool), expect);
      }
      // Null / single-worker pools take the sequential path.
      nn::WorkerPool one(1);
      expect_f_identical(model.run(in, &one), expect);
      expect_f_identical(model.run(in, nullptr), expect);
    }
  }
}

// --- quantized parity: int8, sub-byte, mixed --------------------------------

TEST(ParallelPatch, QuantBitExactAcrossBitwidths) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 5)});
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  for (const int bits : {8, 4}) {
    const auto cfg = quant::make_quant_config(g, ranges,
                                              nn::uniform_bits(g, bits));
    const patch::CompiledPatchQuantModel model(g, plan, cfg);
    for (std::uint64_t seed = 11; seed <= 13; ++seed) {
      const nn::Tensor in = random_input(g.shape(0), seed);
      const nn::QTensor expect = model.run(in);
      for (const int workers : {2, 4}) {
        nn::WorkerPool pool(workers);
        expect_q_identical(model.run(in, &pool), expect);
      }
    }
  }
}

TEST(ParallelPatch, MixedModeBitExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);
  const patch::CompiledPatchQuantModel model(g, plan.patch_plan, deploy_cfg,
                                             branch_cfgs);
  for (int i = 17; i < 20; ++i) {
    const nn::Tensor in = ds.image(i);
    const nn::QTensor expect = model.run(in);
    for (const int workers : {2, 3, 4}) {
      nn::WorkerPool pool(workers);
      expect_q_identical(model.run(in, &pool), expect);
    }
  }
}

TEST(ParallelPatch, ExecutorEntryPointsMatch) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const nn::Tensor in = random_input(g.shape(0), 23);
  nn::WorkerPool pool(4);

  const patch::PatchExecutor pexec(g, plan);
  expect_f_identical(pexec.run_parallel(in, &pool), pexec.run(in));

  const auto ranges = quant::calibrate_ranges(g, std::vector<nn::Tensor>{in});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchQuantExecutor qexec(g, plan, cfg);
  expect_q_identical(qexec.run_parallel(in, &pool), qexec.run(in));
}

// --- region-merge determinism under shuffled completion order ---------------

TEST(ParallelPatch, MergeOrderIndependentQuant) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const int split = plan.spec.split_layer;
  const nn::TensorShape out_shape = g.shape(split);

  // Per-branch tiles with per-branch params (exercises the mixed-mode
  // rescale path of the merge).
  nn::Rng rng(77);
  std::vector<nn::QTensor> tiles;
  std::vector<patch::Region> regions;
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const patch::BranchStep& last = plan.branches[b].steps.back();
    regions.push_back(last.out_region);
    const nn::QuantParams p = nn::choose_quant_params(
        -1.0f - 0.1f * static_cast<float>(b), 1.0f, 8);
    nn::QTensor tile(nn::TensorShape{last.out_region.y.size(),
                                     last.out_region.x.size(), out_shape.c},
                     p);
    for (auto& v : tile.data()) {
      v = static_cast<std::int8_t>(rng.uniform(-128, 128));
    }
    tiles.push_back(std::move(tile));
  }
  const nn::QuantParams target = nn::choose_quant_params(-2.0f, 2.0f, 8);

  const auto merge_in_order = [&](const std::vector<std::size_t>& order) {
    nn::QTensor assembled(out_shape, target);
    std::fill(assembled.data().begin(), assembled.data().end(),
              std::int8_t{0});
    for (std::size_t b : order) {
      patch::merge_region_q(tiles[b], regions[b], assembled);
    }
    return assembled;
  };

  std::vector<std::size_t> order(tiles.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const nn::QTensor expect = merge_in_order(order);

  std::mt19937 shuffler(123);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(order.begin(), order.end(), shuffler);
    expect_q_identical(merge_in_order(order), expect);
  }

  // The tiles cover the assembled map exactly once (disjoint partition) —
  // the property that makes the merge commute.
  std::vector<int> cover(static_cast<std::size_t>(out_shape.h * out_shape.w),
                         0);
  for (const patch::Region& r : regions) {
    for (int y = r.y.begin; y < r.y.end; ++y) {
      for (int x = r.x.begin; x < r.x.end; ++x) {
        ++cover[static_cast<std::size_t>(y * out_shape.w + x)];
      }
    }
  }
  for (const int c : cover) EXPECT_EQ(c, 1);
}

TEST(ParallelPatch, MergeOrderIndependentFloat) {
  const nn::TensorShape shape{8, 8, 3};
  nn::Rng rng(88);
  // A 2x2 partition of an 8x8 map.
  std::vector<patch::Region> regions = {
      {{0, 4}, {0, 4}}, {{0, 4}, {4, 8}}, {{4, 8}, {0, 4}}, {{4, 8}, {4, 8}}};
  std::vector<nn::Tensor> tiles;
  for (const patch::Region& r : regions) {
    nn::Tensor t(nn::TensorShape{r.y.size(), r.x.size(), shape.c});
    for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
    tiles.push_back(std::move(t));
  }
  const auto merge_in_order = [&](const std::vector<std::size_t>& order) {
    nn::Tensor assembled(shape);
    for (std::size_t b : order) {
      patch::merge_region_f32(tiles[b], regions[b], assembled);
    }
    return assembled;
  };
  std::vector<std::size_t> order{0, 1, 2, 3};
  const nn::Tensor expect = merge_in_order(order);
  std::mt19937 shuffler(42);
  for (int round = 0; round < 8; ++round) {
    std::shuffle(order.begin(), order.end(), shuffler);
    expect_f_identical(merge_in_order(order), expect);
  }
}

// --- parallel arena layout ---------------------------------------------------

TEST(ParallelPatch, ParallelPlanSlicesAndSharedAreDisjoint) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 31)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);

  for (const int workers : {1, 2, 4, 8}) {
    const nn::ParallelArenaPlan& p = model.parallel_plan(workers);
    EXPECT_EQ(p.num_workers, workers);
    EXPECT_GE(p.slice_stride, p.slice.peak_bytes);
    EXPECT_EQ(p.slice_stride % 16, 0);
    // Slices precede the shared region; slots stay inside their slice.
    EXPECT_EQ(p.shared_offset(), p.slice_stride * workers);
    EXPECT_EQ(p.total_bytes(), p.shared_offset() + p.shared.peak_bytes);
    for (const nn::ArenaSlot& s : p.slice.slots) {
      EXPECT_LE(s.offset + s.size, p.slice_stride);
    }
    for (int w = 0; w + 1 < workers; ++w) {
      EXPECT_LE(p.slice_offset(w) + p.slice.peak_bytes, p.slice_offset(w + 1));
    }
    // Lifetime-overlapping slots never overlap in bytes (both regions).
    for (const nn::ArenaPlan* ap : {&p.slice, &p.shared}) {
      for (std::size_t a = 0; a < ap->slots.size(); ++a) {
        for (std::size_t b = a + 1; b < ap->slots.size(); ++b) {
          if (ap->slots[a].overlaps_lifetime(ap->slots[b])) {
            EXPECT_FALSE(ap->slots[a].overlaps_bytes(ap->slots[b]))
                << "slots " << a << "/" << b;
          }
        }
      }
    }
  }
  // Parallel runs must never write past their planned arena — the barrier
  // path binds parallel_plan, the pipelined path the widened-lifetime
  // pipelined_plan.
  nn::WorkerPool pool(4);
  (void)model.run_barrier(random_input(g.shape(0), 32), &pool);
  EXPECT_LE(model.measured_high_water(), model.parallel_plan(4).total_bytes());
  (void)model.run(random_input(g.shape(0), 32), &pool);
  EXPECT_LE(model.measured_high_water(),
            model.pipelined_plan(4).total_bytes());
}

// --- thread-affinity enforcement --------------------------------------------

TEST(ThreadAffinity, CatchesBackendSharedAcrossThreads) {
  nn::ops::KernelBackend backend(nn::ops::KernelTier::Fast);
  const nn::Tensor a = random_input({4, 4, 8}, 41);
  const nn::Tensor b = random_input({4, 4, 8}, 42);
  const nn::QuantParams p = nn::choose_quant_params(-3.0f, 3.0f, 8);
  const nn::QTensor qa = nn::quantize(a, p);
  const nn::QTensor qb = nn::quantize(b, p);
  // First use binds the backend to this thread.
  (void)backend.add(qa, qb, nn::Activation::None, p);

  bool threw = false;
  std::thread other([&] {
    try {
      (void)backend.add(qa, qb, nn::Activation::None, p);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw) << "cross-thread use without rebind must throw";

  // Explicit handoff makes the same use legal.
  backend.rebind_thread();
  bool ok = false;
  std::thread third([&] {
    (void)backend.add(qa, qb, nn::Activation::None, p);
    ok = true;
  });
  third.join();
  EXPECT_TRUE(ok);
}

TEST(ThreadAffinity, CatchesScratchArenaSharedAcrossThreads) {
  nn::ops::ScratchArena arena;
  (void)arena.f32(16);  // binds to this thread
  bool threw = false;
  std::thread other([&] {
    try {
      (void)arena.i8(16);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  other.join();
  EXPECT_TRUE(threw);
  arena.rebind_thread();
  (void)arena.i32(16);  // re-adopted by this thread after rebind
}

}  // namespace
}  // namespace qmcu
