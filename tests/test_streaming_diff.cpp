// Frame differencing (patch/streaming_diff.h) is the safety boundary of the
// streaming runtime: the exact dirty mask must be a conservative superset of
// "this branch's crop contains a changed byte" for every grid shape, stride
// and halo overlap, or temporal reuse silently corrupts outputs. These tests
// pin diff_frames' span/bounds/count bookkeeping, the clamped crop geometry,
// the dirty-rect mapper (including 1xN grids and overlapping receptive
// fields), both dirty_branches modes, and the crc fingerprint helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "models/zoo.h"
#include "nn/rng.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_plan.h"
#include "patch/streaming_diff.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

// plan_mcunetv2 only plans square grids; asymmetric (1xN / Nx1) grids come
// from overriding the spec the planner picked — build_patch_plan accepts
// any grid the split shape admits.
patch::PatchPlan make_plan(const nn::Graph& g, int rows, int cols) {
  patch::PatchSpec spec =
      patch::plan_mcunetv2(g, {std::max({rows, cols, 2}), 4});
  spec.grid_rows = rows;
  spec.grid_cols = cols;
  return patch::build_patch_plan(g, spec);
}

// The ground-truth mask: branch b is dirty iff some changed pixel lies
// inside its clamped crop. The production mask must never clear a branch
// this flags.
std::vector<std::uint8_t> exact_ground_truth(const nn::Tensor& prev,
                                             const nn::Tensor& cur,
                                             const patch::PatchPlan& plan) {
  const nn::TensorShape s = prev.shape();
  std::vector<std::uint8_t> truth(plan.branches.size(), 0);
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const patch::Region crop =
        patch::branch_input_region(plan, static_cast<int>(b), s);
    for (int y = crop.y.begin; y < crop.y.end && !truth[b]; ++y) {
      for (int x = crop.x.begin; x < crop.x.end && !truth[b]; ++x) {
        for (int c = 0; c < s.c; ++c) {
          if (prev.at(y, x, c) != cur.at(y, x, c)) {
            truth[b] = 1;
            break;
          }
        }
      }
    }
  }
  return truth;
}

// --- diff_frames -------------------------------------------------------------

TEST(StreamingDiff, IdenticalFramesProduceEmptyDiff) {
  const nn::Tensor a = random_input({16, 20, 3}, 1);
  const nn::Tensor b = a;  // deep copy
  const patch::FrameDiff d = patch::diff_frames(a, b);
  EXPECT_TRUE(d.identical());
  EXPECT_EQ(d.changed_pixels, 0);
  EXPECT_TRUE(d.bounds.empty());
  ASSERT_EQ(d.row_spans.size(), 16u);
  for (const patch::Interval& span : d.row_spans) EXPECT_TRUE(span.empty());
  EXPECT_EQ(d.changed_fraction(a.shape()), 0.0);
}

TEST(StreamingDiff, SinglePixelChange) {
  const nn::Tensor a = random_input({12, 10, 3}, 2);
  nn::Tensor b = a;
  b.at(7, 4, 1) += 1.0f;
  const patch::FrameDiff d = patch::diff_frames(a, b);
  EXPECT_FALSE(d.identical());
  EXPECT_EQ(d.changed_pixels, 1);
  EXPECT_EQ(d.bounds.y, (patch::Interval{7, 8}));
  EXPECT_EQ(d.bounds.x, (patch::Interval{4, 5}));
  for (int y = 0; y < 12; ++y) {
    if (y == 7) {
      EXPECT_EQ(d.row_spans[static_cast<std::size_t>(y)],
                (patch::Interval{4, 5}));
    } else {
      EXPECT_TRUE(d.row_spans[static_cast<std::size_t>(y)].empty());
    }
  }
}

TEST(StreamingDiff, RowSpanIsHullOfChangedColumns) {
  const nn::Tensor a = random_input({8, 30, 2}, 3);
  nn::Tensor b = a;
  // Two disjoint changes on one row: the span must be their hull.
  b.at(3, 5, 0) += 1.0f;
  b.at(3, 25, 1) -= 1.0f;
  // And a change on another row bounding the y hull.
  b.at(6, 10, 0) += 2.0f;
  const patch::FrameDiff d = patch::diff_frames(a, b);
  EXPECT_EQ(d.changed_pixels, 3);
  EXPECT_EQ(d.row_spans[3], (patch::Interval{5, 26}));
  EXPECT_EQ(d.row_spans[6], (patch::Interval{10, 11}));
  EXPECT_EQ(d.bounds.y, (patch::Interval{3, 7}));
  EXPECT_EQ(d.bounds.x, (patch::Interval{5, 26}));
  EXPECT_DOUBLE_EQ(d.changed_fraction(a.shape()), 3.0 / (8 * 30));
}

TEST(StreamingDiff, DiffIsByteExactNotEpsilon) {
  // -0.0f and 0.0f compare equal as floats but differ as bytes: the diff
  // must flag them (the runtime's skip contract is byte identity).
  nn::Tensor a({2, 2, 1});
  std::fill(a.data().begin(), a.data().end(), 0.0f);
  nn::Tensor b = a;
  b.at(1, 1, 0) = -0.0f;
  EXPECT_EQ(patch::diff_frames(a, b).changed_pixels, 1);
}

// --- branch_input_region ----------------------------------------------------

TEST(StreamingDiff, BranchCropsAreClampedAndCoverTheImage) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const nn::TensorShape in_shape = g.shape(0);
  for (const auto& [rows, cols] : {std::pair{2, 2}, {1, 4}, {4, 1}, {3, 3}}) {
    const patch::PatchPlan plan = make_plan(g, rows, cols);
    std::int64_t covered = 0;
    for (std::size_t b = 0; b < plan.branches.size(); ++b) {
      const patch::Region crop =
          patch::branch_input_region(plan, static_cast<int>(b), in_shape);
      // Clamped to the image.
      EXPECT_GE(crop.y.begin, 0);
      EXPECT_GE(crop.x.begin, 0);
      EXPECT_LE(crop.y.end, in_shape.h);
      EXPECT_LE(crop.x.end, in_shape.w);
      EXPECT_FALSE(crop.empty());
      covered += crop.area();
    }
    // Halos overlap, so the crops must cover at least the whole image.
    EXPECT_GE(covered, static_cast<std::int64_t>(in_shape.h) * in_shape.w)
        << rows << "x" << cols;
  }
}

// --- affected_branches ------------------------------------------------------

TEST(StreamingDiff, AffectedBranchesMatchesCropOverlap) {
  const nn::Graph g = models::make_model("mcunet", small_cfg());
  const nn::TensorShape in_shape = g.shape(0);
  for (const auto& [rows, cols] : {std::pair{2, 2}, {1, 3}, {4, 4}}) {
    const patch::PatchPlan plan = make_plan(g, rows, cols);
    nn::Rng rng(91);
    for (int trial = 0; trial < 20; ++trial) {
      const int y0 = static_cast<int>(rng.uniform(0, in_shape.h));
      const int x0 = static_cast<int>(rng.uniform(0, in_shape.w));
      const int y1 = y0 + 1 + static_cast<int>(rng.uniform(0, in_shape.h - y0));
      const int x1 = x0 + 1 + static_cast<int>(rng.uniform(0, in_shape.w - x0));
      const patch::Region rect{{y0, y1}, {x0, x1}};
      const std::vector<int> got =
          patch::affected_branches(plan, rect, in_shape);
      const std::set<int> got_set(got.begin(), got.end());
      EXPECT_EQ(got_set.size(), got.size()) << "duplicate branch index";
      for (std::size_t b = 0; b < plan.branches.size(); ++b) {
        const patch::Region crop =
            patch::branch_input_region(plan, static_cast<int>(b), in_shape);
        const bool overlaps = crop.y.begin < rect.y.end &&
                              rect.y.begin < crop.y.end &&
                              crop.x.begin < rect.x.end &&
                              rect.x.begin < crop.x.end;
        EXPECT_EQ(got_set.count(static_cast<int>(b)) == 1, overlaps)
            << rows << "x" << cols << " branch " << b;
      }
    }
  }
}

TEST(StreamingDiff, EmptyRectAffectsNothing) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan = make_plan(g, 2, 2);
  EXPECT_TRUE(
      patch::affected_branches(plan, patch::Region{}, g.shape(0)).empty());
}

TEST(StreamingDiff, HaloOverlapDirtiesNeighbourBranches) {
  // A change inside patch (0,0)'s tile but within the halo of patch (0,1)
  // must dirty both branches.
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const nn::TensorShape in_shape = g.shape(0);
  const patch::PatchPlan plan = make_plan(g, 2, 2);
  const patch::Region crop1 = patch::branch_input_region(plan, 1, in_shape);
  // Column just inside branch 1's halo, on branch 0's side of the split.
  const int x = crop1.x.begin;
  ASSERT_LT(x, in_shape.w / 2) << "expected a halo reaching across the seam";
  const nn::Tensor prev = random_input(in_shape, 7);
  nn::Tensor cur = prev;
  cur.at(0, x, 0) += 1.0f;
  const std::vector<std::uint8_t> dirty =
      patch::dirty_branches(prev, cur, plan);
  EXPECT_TRUE(dirty[0]);
  EXPECT_TRUE(dirty[1]);
}

// --- dirty_branches ---------------------------------------------------------

TEST(StreamingDiff, ExactMaskIsConservativeSuperset) {
  const nn::Graph g = models::make_model("mnasnet", small_cfg());
  const nn::TensorShape in_shape = g.shape(0);
  for (const auto& [rows, cols] : {std::pair{2, 2}, {1, 4}, {3, 3}}) {
    const patch::PatchPlan plan = make_plan(g, rows, cols);
    nn::Rng rng(13);
    for (int trial = 0; trial < 10; ++trial) {
      const nn::Tensor prev = random_input(in_shape, 100 + trial);
      nn::Tensor cur = prev;
      const int n = 1 + static_cast<int>(rng.uniform(0, 5));
      for (int i = 0; i < n; ++i) {
        cur.at(static_cast<int>(rng.uniform(0, in_shape.h)),
               static_cast<int>(rng.uniform(0, in_shape.w)), 0) += 1.0f;
      }
      const std::vector<std::uint8_t> mask =
          patch::dirty_branches(prev, cur, plan);
      const std::vector<std::uint8_t> truth =
          exact_ground_truth(prev, cur, plan);
      ASSERT_EQ(mask.size(), truth.size());
      for (std::size_t b = 0; b < mask.size(); ++b) {
        // Conservative: everything truly dirty is flagged. (The row-hull
        // approximation may flag extra branches; that is allowed.)
        if (truth[b]) {
          EXPECT_TRUE(mask[b]) << "missed dirty branch " << b;
        }
      }
    }
  }
}

TEST(StreamingDiff, UnchangedFrameYieldsAllClean) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan = make_plan(g, 2, 2);
  const nn::Tensor a = random_input(g.shape(0), 21);
  const std::vector<std::uint8_t> mask = patch::dirty_branches(a, a, plan);
  EXPECT_TRUE(std::all_of(mask.begin(), mask.end(),
                          [](std::uint8_t d) { return d == 0; }));
}

TEST(StreamingDiff, ToleranceModeForgivesSmallDeltas) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const nn::TensorShape in_shape = g.shape(0);
  const patch::PatchPlan plan = make_plan(g, 2, 2);
  const nn::Tensor prev = random_input(in_shape, 33);
  nn::Tensor cur = prev;
  cur.at(2, 2, 0) += 1e-4f;  // tiny change in branch 0's tile

  const std::vector<std::uint8_t> exact =
      patch::dirty_branches(prev, cur, plan);
  EXPECT_TRUE(exact[0]);

  // Mean |delta| over branch 0's crop is far below 1e-2: tolerant mask
  // clears it.
  const std::vector<std::uint8_t> tolerant =
      patch::dirty_branches(prev, cur, plan, 1e-2f);
  EXPECT_FALSE(tolerant[0]);

  // A tolerance of 0 (or negative) is the exact mask.
  EXPECT_EQ(patch::dirty_branches(prev, cur, plan, 0.0f), exact);

  // A large change defeats any reasonable tolerance.
  nn::Tensor big = prev;
  for (int y = 0; y < in_shape.h / 2; ++y) {
    for (int x = 0; x < in_shape.w / 2; ++x) {
      big.at(y, x, 0) += 100.0f;
    }
  }
  EXPECT_TRUE(patch::dirty_branches(prev, big, plan, 1e-2f)[0]);
}

// --- crc fingerprints -------------------------------------------------------

TEST(StreamingDiff, CrcFingerprintsDetectContentChanges) {
  const nn::Tensor a = random_input({10, 8, 3}, 55);
  nn::Tensor b = a;
  EXPECT_EQ(patch::tensor_crc32(a), patch::tensor_crc32(b));
  b.at(4, 4, 2) += 1.0f;
  EXPECT_NE(patch::tensor_crc32(a), patch::tensor_crc32(b));

  // Row fingerprints localise the change.
  EXPECT_EQ(patch::rows_crc32(a, {0, 4}), patch::rows_crc32(b, {0, 4}));
  EXPECT_NE(patch::rows_crc32(a, {4, 5}), patch::rows_crc32(b, {4, 5}));

  // Region fingerprints: the changed pixel's region differs, a disjoint
  // region does not.
  EXPECT_NE(patch::region_crc32(a, {{3, 6}, {3, 6}}),
            patch::region_crc32(b, {{3, 6}, {3, 6}}));
  EXPECT_EQ(patch::region_crc32(a, {{0, 3}, {0, 3}}),
            patch::region_crc32(b, {{0, 3}, {0, 3}}));
}

TEST(StreamingDiff, QTensorCrcMatchesContent) {
  nn::QTensor a({4, 4, 2}, nn::choose_quant_params(-1.0f, 1.0f, 8));
  nn::Rng rng(66);
  for (auto& v : a.data()) {
    v = static_cast<std::int8_t>(rng.uniform(-128, 128));
  }
  nn::QTensor b = a;
  EXPECT_EQ(patch::tensor_crc32(a), patch::tensor_crc32(b));
  b.at(1, 2, 0) = static_cast<std::int8_t>(b.at(1, 2, 0) + 1);
  EXPECT_NE(patch::tensor_crc32(a), patch::tensor_crc32(b));
  EXPECT_NE(patch::rows_crc32(a, {1, 2}), patch::rows_crc32(b, {1, 2}));
  EXPECT_EQ(patch::rows_crc32(a, {2, 4}), patch::rows_crc32(b, {2, 4}));
}

}  // namespace
}  // namespace qmcu
