// Tests for concrete arena placement (nn::ArenaPlanner) and the
// measured-vs-predicted contract of the compiled executors: no two
// lifetime-overlapping tensors may share bytes, and the arena high-water a
// compiled run actually touches must equal the planner's peak_bytes.
#include <gtest/gtest.h>

#include "models/weights.h"
#include "models/zoo.h"
#include "nn/compiled_model.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_plan.h"
#include "quant/calibration.h"

namespace qmcu::nn {
namespace {

void expect_no_live_overlap(const ArenaPlan& plan) {
  for (std::size_t a = 0; a < plan.slots.size(); ++a) {
    for (std::size_t b = a + 1; b < plan.slots.size(); ++b) {
      const ArenaSlot& x = plan.slots[a];
      const ArenaSlot& y = plan.slots[b];
      if (!x.overlaps_lifetime(y)) continue;
      EXPECT_FALSE(x.overlaps_bytes(y))
          << "slots " << a << " and " << b << " are live together at ["
          << x.offset << ", " << x.offset + x.size << ") and [" << y.offset
          << ", " << y.offset + y.size << ")";
    }
  }
}

TEST(ArenaPlanner, RandomizedIntervalsNeverOverlapInBytes) {
  Rng rng(0xa7e4a);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform(0, 30));
    std::vector<ArenaRequest> requests;
    requests.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int first = static_cast<int>(rng.uniform(0, 40));
      const int len = static_cast<int>(rng.uniform(0, 10));
      requests.push_back({1 + static_cast<std::int64_t>(rng.uniform(0, 4096)),
                          first, first + len});
    }
    const ArenaPlan plan = ArenaPlanner().plan(requests);
    ASSERT_EQ(plan.slots.size(), requests.size());
    expect_no_live_overlap(plan);
    // The arena extent is exactly the furthest slot end, and can never
    // undercut the sum-of-live accounting bound.
    std::int64_t extent = 0;
    for (const ArenaSlot& s : plan.slots) {
      extent = std::max(extent, s.offset + s.size);
    }
    EXPECT_EQ(plan.peak_bytes, extent);
    EXPECT_GE(plan.peak_bytes, plan.live_peak_bytes);
  }
}

TEST(ArenaPlanner, DisjointLifetimesShareBytes) {
  // Two tensors that are never live together must reuse the same offset.
  std::vector<ArenaRequest> requests{{1000, 0, 1}, {1000, 2, 3}};
  const ArenaPlan plan = ArenaPlanner().plan(requests);
  EXPECT_EQ(plan.slots[0].offset, 0);
  EXPECT_EQ(plan.slots[1].offset, 0);
  EXPECT_EQ(plan.peak_bytes, 1000);
}

TEST(ArenaPlanner, ChainPacksToAccountingPeak) {
  // A pure chain (producer + consumer live pairwise) packs without
  // fragmentation: placed extent == sum-of-live peak.
  Graph g("chain");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 2, 3, 2, 1, Activation::ReLU);
  g.add_global_avg_pool(b);
  const ArenaPlan plan = ArenaPlanner(1).plan(g, uniform_bits(g, 8));
  const MemoryPlan accounting = plan_layer_based(g, uniform_bits(g, 8));
  EXPECT_EQ(plan.peak_bytes, accounting.peak_bytes);
  EXPECT_EQ(plan.live_peak_bytes, accounting.peak_bytes);
  expect_no_live_overlap(plan);
}

TEST(ArenaPlanner, HonoursSubByteBitwidths) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 8});
  g.add_conv2d(in, 8, 3, 1, 1, Activation::ReLU);
  const ArenaPlan p8 = ArenaPlanner(1).plan(g, uniform_bits(g, 8));
  const ArenaPlan p4 = ArenaPlanner(1).plan(g, uniform_bits(g, 4));
  EXPECT_EQ(p4.peak_bytes * 2, p8.peak_bytes);
}

TEST(ArenaPlanner, DeterministicPlacement) {
  Rng rng(7);
  std::vector<ArenaRequest> requests;
  for (int i = 0; i < 20; ++i) {
    const int first = static_cast<int>(rng.uniform(0, 10));
    requests.push_back({64 * (1 + static_cast<std::int64_t>(rng.uniform(0, 8))),
                        first, first + static_cast<int>(rng.uniform(0, 5))});
  }
  const ArenaPlan a = ArenaPlanner().plan(requests);
  const ArenaPlan b = ArenaPlanner().plan(requests);
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].offset, b.slots[i].offset);
  }
}

TEST(ArenaPlanner, ParallelPlanReplicatesSliceAndAppendsShared) {
  Rng rng(0x9b1d);
  for (int trial = 0; trial < 20; ++trial) {
    const auto random_requests = [&](int n) {
      std::vector<ArenaRequest> reqs;
      for (int i = 0; i < n; ++i) {
        const int first = static_cast<int>(rng.uniform(0, 12));
        reqs.push_back(
            {1 + static_cast<std::int64_t>(rng.uniform(0, 2048)), first,
             first + static_cast<int>(rng.uniform(0, 6))});
      }
      return reqs;
    };
    const auto slice_reqs =
        random_requests(2 + static_cast<int>(rng.uniform(0, 8)));
    const auto shared_reqs =
        random_requests(1 + static_cast<int>(rng.uniform(0, 8)));
    const int workers = 1 + static_cast<int>(rng.uniform(0, 8));
    const ParallelArenaPlan p =
        ArenaPlanner().plan_parallel(slice_reqs, shared_reqs, workers);

    EXPECT_EQ(p.num_workers, workers);
    expect_no_live_overlap(p.slice);
    expect_no_live_overlap(p.shared);
    // The stride covers the slice plan and keeps every slice base aligned.
    EXPECT_GE(p.slice_stride, p.slice.peak_bytes);
    EXPECT_EQ(p.slice_stride % 16, 0);
    for (const ArenaSlot& s : p.slice.slots) {
      EXPECT_LE(s.offset + s.size, p.slice_stride);
    }
    // Slices tile [0, shared_offset); the shared region follows.
    for (int w = 0; w < workers; ++w) {
      EXPECT_EQ(p.slice_offset(w), static_cast<std::int64_t>(w) * p.slice_stride);
    }
    EXPECT_EQ(p.shared_offset(), p.slice_stride * workers);
    EXPECT_EQ(p.total_bytes(), p.shared_offset() + p.shared.peak_bytes);
  }
}

TEST(ArenaPlanner, PipelinedPlanWidensOverlapWindow) {
  // Shared timeline: steps 0-1 are the branch phase, steps 2-3 banded tail
  // layers, steps 4-5 the post-join rest. Horizon = 3 (last banded step).
  const std::vector<ArenaRequest> slice = {{64, 0, 1}};
  const std::vector<ArenaRequest> shared = {
      {128, 0, 2},   // assembled map: born at 0, read by the first band
      {96, 0, 1},    // quantized input: live across the branch phase
      {80, 2, 3},    // banded tail layer A
      {72, 3, 4},    // banded tail layer B, read by the rest
      {48, 4, 5},    // rest layer (after the join)
  };
  const ParallelArenaPlan p =
      ArenaPlanner().plan_pipelined(slice, shared, 2, 3);

  // Everything born at or before the horizon is widened to [0, >=3]: those
  // four slots all overlap in lifetime now, so they must be pairwise
  // byte-disjoint even though e.g. the quantized input (dead at step 1 on
  // the barrier timeline) could have shared bytes with tail layer A.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      EXPECT_TRUE(p.shared.slots[a].overlaps_lifetime(p.shared.slots[b]))
          << a << "/" << b;
      EXPECT_FALSE(p.shared.slots[a].overlaps_bytes(p.shared.slots[b]))
          << a << "/" << b;
    }
  }
  // The widened window must cover at least the sum of the always-live
  // slots; the barrier plan may be smaller (it reuses the input's bytes).
  const ParallelArenaPlan barrier =
      ArenaPlanner().plan_parallel(slice, shared, 2);
  EXPECT_GE(p.shared.peak_bytes, 128 + 96 + 80 + 72);
  EXPECT_LE(barrier.shared.peak_bytes, p.shared.peak_bytes);
  // Post-horizon requests keep their lifetimes: the rest layer may still
  // recycle bytes of a widened slot that dies at the horizon.
  EXPECT_EQ(p.shared.slots[4].first_step, 4);
  // Slices are untouched by the widening.
  EXPECT_EQ(p.slice.peak_bytes, barrier.slice.peak_bytes);
}

TEST(ArenaPlanner, PipelinedPlanRejectsNegativeHorizon) {
  const std::vector<ArenaRequest> reqs = {{16, 0, 0}};
  EXPECT_THROW((void)ArenaPlanner().plan_pipelined(reqs, reqs, 1, -1),
               std::exception);
}

TEST(ArenaPlanner, ParallelPlanRejectsZeroWorkers) {
  const std::vector<ArenaRequest> reqs{{64, 0, 1}};
  EXPECT_THROW(ArenaPlanner().plan_parallel(reqs, reqs, 0),
               std::invalid_argument);
}

TEST(ArenaPlanner, RejectsInvertedLifetime) {
  std::vector<ArenaRequest> requests{{64, 3, 1}};
  EXPECT_THROW(ArenaPlanner().plan(requests), std::invalid_argument);
}

// --- measured high-water == planned peak, across the model zoo ------------

models::ModelConfig tiny_config() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 64;
  cfg.num_classes = 10;
  return cfg;
}

Tensor random_input(TensorShape s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(CompiledArena, MeasuredHighWaterEqualsPlannedPeakOnZooModels) {
  for (const char* name : {"mobilenetv2", "mcunet", "resnet18",
                           "squeezenet"}) {
    const Graph g = models::make_model(name, tiny_config());
    const Tensor in = random_input(g.shape(0), 11);

    const CompiledModel fmodel(g);
    (void)fmodel.run(in);
    EXPECT_EQ(fmodel.measured_high_water(), fmodel.arena_bytes()) << name;
    expect_no_live_overlap(fmodel.arena_plan());

    const auto ranges =
        quant::calibrate_ranges(g, std::vector<Tensor>{in});
    const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));
    const CompiledQuantModel qmodel(g, cfg);
    (void)qmodel.run(in);
    EXPECT_EQ(qmodel.measured_high_water(), qmodel.arena_bytes()) << name;
    expect_no_live_overlap(qmodel.arena_plan());
  }
}

TEST(CompiledArena, PatchModelsMeasureTheirPlannedPeak) {
  const Graph g = models::make_model("mobilenetv2", tiny_config());
  const Tensor in = random_input(g.shape(0), 12);
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));

  const patch::CompiledPatchModel fmodel(g, plan);
  (void)fmodel.run(in);
  EXPECT_EQ(fmodel.measured_high_water(), fmodel.arena_bytes());
  expect_no_live_overlap(fmodel.arena_plan());

  const auto ranges = quant::calibrate_ranges(g, std::vector<Tensor>{in});
  const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));
  const patch::CompiledPatchQuantModel qmodel(g, plan, cfg);
  (void)qmodel.run(in);
  EXPECT_EQ(qmodel.measured_high_water(), qmodel.arena_bytes());
  expect_no_live_overlap(qmodel.arena_plan());
}

TEST(CompiledArena, ArenaIsSmallerThanKeepEverything) {
  // The whole point of placement: the arena must undercut the keep-every-
  // feature-map footprint on a real network.
  const Graph g = models::make_model("mobilenetv2", tiny_config());
  std::int64_t keep_all = 0;
  for (int i = 0; i < g.size(); ++i) keep_all += g.shape(i).elements();
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<Tensor>{random_input(g.shape(0), 13)});
  const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));
  const CompiledQuantModel qmodel(g, cfg);
  EXPECT_LT(qmodel.arena_bytes(), keep_all / 2);
}

}  // namespace
}  // namespace qmcu::nn
