// Unit tests for histograms and activation entropy (quant/histogram.h,
// quant/entropy.h) — the accuracy proxy of VDQS (paper Eqs. 3-4).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/rng.h"
#include "quant/entropy.h"
#include "quant/histogram.h"

namespace qmcu::quant {
namespace {

TEST(Histogram, UniformDataFillsBinsEvenly) {
  Histogram h(0.0f, 1.0f, 4);
  for (int i = 0; i < 400; ++i) {
    h.add((static_cast<float>(i) + 0.5f) / 400.0f);
  }
  for (std::int64_t c : h.counts()) EXPECT_EQ(c, 100);
}

TEST(Histogram, OutOfRangeValuesClampIntoEdgeBins) {
  Histogram h(0.0f, 1.0f, 2);
  h.add(-5.0f);
  h.add(99.0f);
  EXPECT_EQ(h.counts()[0], 1);
  EXPECT_EQ(h.counts()[1], 1);
  EXPECT_EQ(h.total(), 2);
}

TEST(Histogram, ProbabilitiesSumToOne) {
  Histogram h(-1.0f, 1.0f, 8);
  nn::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    h.add(static_cast<float>(rng.normal(0.0, 0.3)));
  }
  double sum = 0.0;
  for (double p : h.probabilities()) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0f, 1.0f, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0f, 1.0f, 0), std::invalid_argument);
}

TEST(ShannonEntropy, DeltaDistributionHasZeroEntropy) {
  const std::vector<std::int64_t> counts{0, 100, 0, 0};
  EXPECT_DOUBLE_EQ(shannon_entropy(counts), 0.0);
}

TEST(ShannonEntropy, UniformDistributionIsLogK) {
  const std::vector<std::int64_t> counts{25, 25, 25, 25};
  EXPECT_NEAR(shannon_entropy(counts), std::log(4.0), 1e-12);
}

TEST(ShannonEntropy, EmptyHistogramIsZero) {
  const std::vector<std::int64_t> counts{0, 0, 0};
  EXPECT_DOUBLE_EQ(shannon_entropy(counts), 0.0);
}

TEST(ShannonEntropy, UniformMaximisesEntropy) {
  const std::vector<std::int64_t> uniform{50, 50, 50, 50};
  const std::vector<std::int64_t> skewed{170, 10, 10, 10};
  EXPECT_GT(shannon_entropy(uniform), shannon_entropy(skewed));
}

nn::Tensor gaussian_tensor(int n, double stddev, std::uint64_t seed) {
  nn::Tensor t(nn::TensorShape{1, 1, n});
  nn::Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    t.at(0, 0, i) = static_cast<float>(rng.normal(0.0, stddev));
  }
  return t;
}

// Property: quantizing to fewer bits can only destroy information —
// H(i, 2) <= H(i, 4) <= H(i, 8) <= H(i, float) (paper's Eq. 5 premise).
TEST(ActivationEntropy, MonotoneInBitwidthOnGaussianData) {
  const nn::Tensor t = gaussian_tensor(4096, 1.0, 99);
  const int k = 256;
  const double h_float = activation_entropy(t, k);
  const double h8 = quantized_activation_entropy(t, 8, k);
  const double h4 = quantized_activation_entropy(t, 4, k);
  const double h2 = quantized_activation_entropy(t, 2, k);
  EXPECT_LE(h2, h4 + 1e-9);
  EXPECT_LE(h4, h8 + 1e-9);
  EXPECT_LE(h8, h_float + 1e-9);
  EXPECT_GT(h_float, 0.0);
}

TEST(ActivationEntropy, QuantizedLevelsBoundEntropy) {
  const nn::Tensor t = gaussian_tensor(8192, 1.0, 17);
  // A b-bit tensor has at most 2^b distinct values -> entropy <= b ln 2.
  EXPECT_LE(quantized_activation_entropy(t, 2, 256), 2.0 * std::log(2.0) + 1e-9);
  EXPECT_LE(quantized_activation_entropy(t, 4, 256), 4.0 * std::log(2.0) + 1e-9);
}

TEST(ActivationEntropy, ConstantTensorHasZeroEntropy) {
  nn::Tensor t(nn::TensorShape{1, 1, 16});
  for (int i = 0; i < 16; ++i) t.at(0, 0, i) = 3.0f;
  EXPECT_DOUBLE_EQ(activation_entropy(t, 64), 0.0);
}

TEST(QuantizationMse, ShrinksWithMoreBits) {
  const nn::Tensor t = gaussian_tensor(2048, 1.0, 3);
  const double m2 = quantization_mse(t, 2);
  const double m4 = quantization_mse(t, 4);
  const double m8 = quantization_mse(t, 8);
  EXPECT_GT(m2, m4);
  EXPECT_GT(m4, m8);
  EXPECT_GE(m8, 0.0);
}

TEST(TensorVariance, MatchesClosedForm) {
  nn::Tensor t(nn::TensorShape{1, 1, 4}, {1.0f, 3.0f, 5.0f, 7.0f});
  EXPECT_NEAR(tensor_variance(t), 5.0, 1e-9);  // population variance
}

TEST(TensorVariance, ZeroForConstantTensor) {
  nn::Tensor t(nn::TensorShape{1, 1, 8});
  for (int i = 0; i < 8; ++i) t.at(0, 0, i) = -2.5f;
  EXPECT_DOUBLE_EQ(tensor_variance(t), 0.0);
}

}  // namespace
}  // namespace qmcu::quant
