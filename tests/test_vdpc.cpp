// Tests for Value-Driven Patch Classification (core/vdpc.h, paper Eq. 1).
#include <gtest/gtest.h>

#include <cmath>

#include "core/vdpc.h"
#include "nn/rng.h"
#include "patch/patch_plan.h"

namespace qmcu::core {
namespace {

TEST(GaussianFit, RecoverMomentsOfKnownSample) {
  nn::Rng rng(1);
  std::vector<float> v(20000);
  for (float& x : v) x = static_cast<float>(rng.normal(3.0, 2.0));
  const GaussianFit fit = fit_gaussian(v);
  EXPECT_NEAR(fit.mean, 3.0, 0.1);
  EXPECT_NEAR(fit.stddev, 2.0, 0.1);
}

TEST(GaussianFit, RejectsEmptySample) {
  EXPECT_THROW(fit_gaussian(std::span<const float>{}),
               std::invalid_argument);
}

TEST(InverseNormalCdf, MatchesKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.84134), 1.0, 1e-3);
  EXPECT_NEAR(inverse_normal_cdf(0.999), 3.090232, 1e-5);
  // Symmetry.
  EXPECT_NEAR(inverse_normal_cdf(0.025), -inverse_normal_cdf(0.975), 1e-9);
}

TEST(InverseNormalCdf, RejectsBoundaries) {
  EXPECT_THROW(inverse_normal_cdf(0.0), std::invalid_argument);
  EXPECT_THROW(inverse_normal_cdf(1.0), std::invalid_argument);
}

TEST(OutlierThreshold, MonotoneInPhi) {
  const GaussianFit fit{0.0, 1.0};
  double prev = 0.0;
  for (double phi : {0.5, 0.8, 0.9, 0.96, 0.99}) {
    const double tau = outlier_threshold(fit, phi);
    EXPECT_GT(tau, prev) << "phi " << phi;
    prev = tau;
  }
}

TEST(OutlierThreshold, PaperOperatingPoint) {
  // phi = 0.96 (central coverage) -> tau ~ 2.054 sigma.
  const GaussianFit fit{0.0, 2.0};
  EXPECT_NEAR(outlier_threshold(fit, 0.96), 2.0 * 2.0537, 2e-3);
}

TEST(OutlierThreshold, DegenerateEndpoints) {
  const GaussianFit fit{0.0, 1.0};
  EXPECT_TRUE(std::isinf(outlier_threshold(fit, 1.0)));
  EXPECT_EQ(outlier_threshold(fit, 0.0), 0.0);
}

// Build a 2x2 patch plan over a minimal graph to test classification.
struct VdpcFixture {
  nn::Graph g{"t"};
  patch::PatchPlan plan;
  VdpcFixture() {
    const int in = g.add_input(nn::TensorShape{16, 16, 1});
    g.add_conv2d(in, 4, 3, 2, 1, nn::Activation::ReLU);
    patch::PatchSpec spec;
    spec.split_layer = 1;
    spec.grid_rows = spec.grid_cols = 2;
    plan = patch::build_patch_plan(g, spec);
  }
};

nn::Tensor gaussian_image(std::uint64_t seed) {
  nn::Tensor img(nn::TensorShape{16, 16, 1});
  nn::Rng rng(seed);
  for (float& v : img.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return img;
}

TEST(ClassifyPatches, SingleInjectedOutlierFlagsExactlyOnePatch) {
  const VdpcFixture s;
  nn::Tensor img = gaussian_image(2);
  img.at(12, 12, 0) = 40.0f;  // bottom-right tile, unmissable outlier
  const PatchClassification cls =
      classify_patches(img, s.plan, VdpcConfig{0.96});
  EXPECT_EQ(cls.num_outlier(), 1);
  // Row-major branch order: (1,1) is the last branch.
  EXPECT_TRUE(cls.outlier.back());
  EXPECT_FALSE(cls.outlier.front());
}

TEST(ClassifyPatches, PhiOneMarksNothing) {
  const VdpcFixture s;
  nn::Tensor img = gaussian_image(3);
  img.at(2, 2, 0) = 100.0f;
  const PatchClassification cls =
      classify_patches(img, s.plan, VdpcConfig{1.0});
  EXPECT_EQ(cls.num_outlier(), 0);
}

TEST(ClassifyPatches, PhiZeroMarksEverything) {
  const VdpcFixture s;
  const PatchClassification cls =
      classify_patches(gaussian_image(4), s.plan, VdpcConfig{0.0});
  EXPECT_EQ(cls.num_outlier(), 4);
  EXPECT_DOUBLE_EQ(cls.outlier_fraction(), 1.0);
}

// Property: raising phi never *adds* outlier patches (paper Fig. 5's knob).
TEST(ClassifyPatches, OutlierSetShrinksAsPhiGrows) {
  const VdpcFixture s;
  nn::Tensor img = gaussian_image(5);
  img.at(1, 1, 0) = 6.0f;
  img.at(9, 9, 0) = 3.0f;
  int prev = 5;
  for (double phi : {0.5, 0.8, 0.9, 0.96, 0.995}) {
    const PatchClassification cls =
        classify_patches(img, s.plan, VdpcConfig{phi});
    EXPECT_LE(cls.num_outlier(), prev) << "phi " << phi;
    prev = cls.num_outlier();
  }
}

TEST(ClassifyPatches, FractionConsistentWithCount) {
  const VdpcFixture s;
  const PatchClassification cls =
      classify_patches(gaussian_image(6), s.plan, VdpcConfig{0.9});
  EXPECT_DOUBLE_EQ(cls.outlier_fraction(),
                   static_cast<double>(cls.num_outlier()) / 4.0);
}

}  // namespace
}  // namespace qmcu::core
