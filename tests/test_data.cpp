// Tests for the synthetic dataset generators (data/synthetic.h).
#include <gtest/gtest.h>

#include <cmath>

#include "core/vdpc.h"
#include "data/synthetic.h"

namespace qmcu::data {
namespace {

DataConfig small(DatasetKind kind) {
  DataConfig cfg;
  cfg.kind = kind;
  cfg.resolution = 48;
  return cfg;
}

class BothDatasets : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(BothDatasets, DeterministicPerIndex) {
  const SyntheticDataset ds(small(GetParam()));
  const nn::Tensor a = ds.image(3);
  const nn::Tensor b = ds.image(3);
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST_P(BothDatasets, DifferentIndicesDiffer) {
  const SyntheticDataset ds(small(GetParam()));
  const nn::Tensor a = ds.image(0);
  const nn::Tensor b = ds.image(1);
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    diff += std::abs(a.data()[i] - b.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST_P(BothDatasets, BellShapedBodyWithHeavyTail) {
  const SyntheticDataset ds(small(GetParam()));
  const nn::Tensor img = ds.image(0);
  const core::GaussianFit fit = core::fit_gaussian(img.data());
  EXPECT_GT(fit.stddev, 0.0);
  // Count mass beyond 3 sigma: a pure Gaussian would have ~0.27%; the
  // heavy-tail component must push it visibly higher, but outliers must
  // stay rare (that is what makes VDPC selective).
  int beyond = 0;
  for (float v : img.data()) {
    if (std::abs(v - fit.mean) > 3.0 * fit.stddev) ++beyond;
  }
  const double frac =
      static_cast<double>(beyond) / static_cast<double>(img.elements());
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.2);
}

TEST_P(BothDatasets, BatchIsConsistentWithImage) {
  const SyntheticDataset ds(small(GetParam()));
  const auto batch = ds.batch(5, 3);
  ASSERT_EQ(batch.size(), 3u);
  const nn::Tensor direct = ds.image(6);
  for (std::size_t i = 0; i < direct.data().size(); ++i) {
    ASSERT_FLOAT_EQ(batch[1].data()[i], direct.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, BothDatasets,
                         ::testing::Values(DatasetKind::ImageNetLike,
                                           DatasetKind::PascalVocLike));

TEST(SyntheticDataset, SeedChangesContent) {
  DataConfig a = small(DatasetKind::ImageNetLike);
  DataConfig b = a;
  b.seed = a.seed + 1;
  const nn::Tensor ia = SyntheticDataset(a).image(0);
  const nn::Tensor ib = SyntheticDataset(b).image(0);
  double diff = 0.0;
  for (std::size_t i = 0; i < ia.data().size(); ++i) {
    diff += std::abs(ia.data()[i] - ib.data()[i]);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticDataset, OutlierKnobControlsTailMass) {
  DataConfig none = small(DatasetKind::ImageNetLike);
  none.outlier_probability = 0.0;
  DataConfig lots = none;
  lots.outlier_probability = 0.05;

  const auto tail_fraction = [](const nn::Tensor& img) {
    const core::GaussianFit fit = core::fit_gaussian(img.data());
    int beyond = 0;
    for (float v : img.data()) {
      if (std::abs(v - fit.mean) > 3.5 * fit.stddev) ++beyond;
    }
    return static_cast<double>(beyond) /
           static_cast<double>(img.elements());
  };
  EXPECT_GT(tail_fraction(SyntheticDataset(lots).image(0)),
            tail_fraction(SyntheticDataset(none).image(0)));
}

TEST(SyntheticDataset, VocImagesHaveHigherContrastThanImageNet) {
  // Object boxes multiply local contrast, so the VOC-like generator should
  // produce a larger dynamic range on average.
  DataConfig in_cfg = small(DatasetKind::ImageNetLike);
  DataConfig voc_cfg = small(DatasetKind::PascalVocLike);
  double in_range = 0.0;
  double voc_range = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto [ilo, ihi] =
        nn::tensor_min_max(SyntheticDataset(in_cfg).image(i));
    const auto [vlo, vhi] =
        nn::tensor_min_max(SyntheticDataset(voc_cfg).image(i));
    in_range += ihi - ilo;
    voc_range += vhi - vlo;
  }
  EXPECT_GT(voc_range, in_range);
}

TEST(SyntheticDataset, RespectsRequestedGeometry) {
  DataConfig cfg = small(DatasetKind::ImageNetLike);
  cfg.resolution = 31;
  cfg.channels = 1;
  const nn::Tensor img = SyntheticDataset(cfg).image(0);
  EXPECT_EQ(img.shape(), (nn::TensorShape{31, 31, 1}));
}

TEST(SyntheticDataset, RejectsInvalidConfig) {
  DataConfig cfg = small(DatasetKind::ImageNetLike);
  cfg.resolution = 0;
  EXPECT_THROW(SyntheticDataset{cfg}, std::invalid_argument);
  cfg = small(DatasetKind::ImageNetLike);
  cfg.outlier_probability = 1.5;
  EXPECT_THROW(SyntheticDataset{cfg}, std::invalid_argument);
}

TEST(SyntheticDataset, DatasetNames) {
  EXPECT_STREQ(dataset_name(DatasetKind::ImageNetLike), "ImageNet");
  EXPECT_STREQ(dataset_name(DatasetKind::PascalVocLike), "PascalVOC");
}

}  // namespace
}  // namespace qmcu::data
