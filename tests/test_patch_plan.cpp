// Tests for patch planning (patch/patch_plan.h): cut points, tiling,
// halo propagation and redundancy accounting.
#include <gtest/gtest.h>

#include <set>

#include "models/zoo.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {
namespace {

// conv stem -> conv -> conv chain with stride 2s; simple and exact.
nn::Graph chain_net() {
  nn::Graph g("chain");
  const int in = g.add_input(nn::TensorShape{16, 16, 3});
  const int a = g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU);   // 8x8
  const int b = g.add_conv2d(a, 8, 3, 1, 1, nn::Activation::ReLU);    // 8x8
  const int c = g.add_conv2d(b, 16, 3, 2, 1, nn::Activation::ReLU);   // 4x4
  g.add_conv2d(c, 16, 1, 1, 0, nn::Activation::ReLU);
  g.add_global_avg_pool(g.size() - 1);
  return g;
}

// A residual block inside the stage exercises DAG propagation.
nn::Graph residual_net() {
  nn::Graph g("res");
  const int in = g.add_input(nn::TensorShape{16, 16, 3});
  const int stem = g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU);
  const int a = g.add_conv2d(stem, 8, 3, 1, 1, nn::Activation::ReLU);
  const int b = g.add_residual_add(stem, a, nn::Activation::None);
  g.add_conv2d(b, 16, 3, 2, 1, nn::Activation::ReLU);
  g.add_global_avg_pool(g.size() - 1);
  return g;
}

TEST(CutPoints, ChainHasEveryConvAsCut) {
  const nn::Graph g = chain_net();
  const std::vector<int> cuts = valid_cut_points(g);
  // Layers 1..4 are all chain points with spatial outputs >= 2x2.
  EXPECT_EQ(cuts, (std::vector<int>{1, 2, 3, 4}));
}

TEST(CutPoints, ResidualInteriorIsNotACut) {
  const nn::Graph g = residual_net();
  const std::vector<int> cuts = valid_cut_points(g);
  // Layer 2 (conv a) is not a cut: stem (1) feeds the add (3) across it.
  EXPECT_EQ(std::count(cuts.begin(), cuts.end(), 2), 0);
  // stem itself and the add are cuts.
  EXPECT_NE(std::count(cuts.begin(), cuts.end(), 1), 0);
  EXPECT_NE(std::count(cuts.begin(), cuts.end(), 3), 0);
}

TEST(PatchPlan, TilesPartitionTheCutLayerExactly) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;  // 8x8 fm
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  ASSERT_EQ(plan.branches.size(), 4u);
  // Collect every (y, x) covered by final-step out regions: must cover the
  // 8x8 map exactly once.
  std::set<std::pair<int, int>> covered;
  for (const PatchBranch& b : plan.branches) {
    const Region r = b.steps.back().out_region;
    for (int y = r.y.begin; y < r.y.end; ++y) {
      for (int x = r.x.begin; x < r.x.end; ++x) {
        EXPECT_TRUE(covered.emplace(y, x).second)
            << "double-covered " << y << "," << x;
      }
    }
  }
  EXPECT_EQ(covered.size(), 64u);
}

TEST(PatchPlan, HaloMakesIntermediateRegionsOverlap) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  // Layer 1's regions (one below the cut) must overlap across branches.
  std::int64_t sum_area = 0;
  for (const PatchBranch& b : plan.branches) {
    const int s = b.step_of(1);
    ASSERT_GE(s, 0);
    sum_area += b.steps[static_cast<std::size_t>(s)].out_region.area();
  }
  EXPECT_GT(sum_area, 8 * 8);  // overlap => sum exceeds the map area
}

TEST(PatchPlan, RedundancyPositiveAndBounded) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  EXPECT_GT(plan.redundant_macs(), 0);
  EXPECT_LT(plan.redundancy_ratio(), 1.0);  // far from doubling
}

TEST(PatchPlan, SingleTileGridHasZeroRedundancy) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 1;
  const PatchPlan plan = build_patch_plan(g, spec);
  EXPECT_EQ(plan.redundant_macs(), 0);
  EXPECT_EQ(plan.stage_macs_patched, plan.stage_macs_layer_based);
}

TEST(PatchPlan, FinerGridMeansMoreRedundancy) {
  const nn::Graph g = chain_net();
  PatchSpec s2;
  s2.split_layer = 2;
  s2.grid_rows = s2.grid_cols = 2;
  PatchSpec s4 = s2;
  s4.grid_rows = s4.grid_cols = 4;
  EXPECT_GT(build_patch_plan(g, s4).redundant_macs(),
            build_patch_plan(g, s2).redundant_macs());
}

TEST(PatchPlan, DeeperSplitMeansMoreRedundancy) {
  const nn::Graph g = chain_net();
  PatchSpec shallow;
  shallow.split_layer = 1;
  shallow.grid_rows = shallow.grid_cols = 2;
  PatchSpec deep = shallow;
  deep.split_layer = 3;
  EXPECT_GT(build_patch_plan(g, deep).redundant_macs(),
            build_patch_plan(g, shallow).redundant_macs());
}

TEST(PatchPlan, ResidualStagePlansAllSteps) {
  const nn::Graph g = residual_net();
  PatchSpec spec;
  spec.split_layer = 3;  // the residual add
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  for (const PatchBranch& b : plan.branches) {
    // Steps: input, stem, conv a, add.
    EXPECT_EQ(b.steps.size(), 4u);
    EXPECT_EQ(b.steps.back().layer_id, 3);
  }
}

TEST(PatchPlan, InputTilesPartitionTheImage) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 3;
  const PatchPlan plan = build_patch_plan(g, spec);
  std::int64_t area = 0;
  for (const PatchBranch& b : plan.branches) {
    area += plan.input_tile(b.row, b.col, g.shape(0)).area();
  }
  EXPECT_EQ(area, 16 * 16);
}

TEST(PatchPlan, RejectsInvalidSpecs) {
  const nn::Graph g = residual_net();
  PatchSpec bad_cut;
  bad_cut.split_layer = 2;  // interior of the residual
  bad_cut.grid_rows = bad_cut.grid_cols = 2;
  EXPECT_THROW(build_patch_plan(g, bad_cut), std::invalid_argument);

  PatchSpec fine;
  fine.split_layer = 3;
  fine.grid_rows = fine.grid_cols = 100;  // finer than the 8x8 map
  EXPECT_THROW(build_patch_plan(g, fine), std::invalid_argument);
}

TEST(PatchPlan, MacsConsistentWithGraphTotals) {
  const nn::Graph g = chain_net();
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  std::int64_t stage_macs = 0;
  for (int l : plan.stage_layers) stage_macs += g.macs(l);
  EXPECT_EQ(plan.stage_macs_layer_based, stage_macs);
  std::int64_t patched = 0;
  for (const PatchBranch& b : plan.branches) patched += b.total_macs;
  EXPECT_EQ(plan.stage_macs_patched, patched);
}

TEST(PatchPlan, WorksOnMobileNetV2) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 64;
  cfg.num_classes = 10;
  cfg.init_weights = false;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const std::vector<int> cuts = valid_cut_points(g);
  ASSERT_FALSE(cuts.empty());
  PatchSpec spec;
  spec.split_layer = cuts[cuts.size() / 2];
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  EXPECT_EQ(plan.branches.size(), 4u);
  EXPECT_GE(plan.redundant_macs(), 0);
}

}  // namespace
}  // namespace qmcu::patch
