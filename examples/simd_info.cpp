// simd_info — prints the runtime-detected SIMD ISA and which microkernels
// the Simd tier resolved. CI runs this after every build so the log always
// records which tier actually executed the suite (and whether
// QMCU_FORCE_SCALAR pinned it to the scalar fallback).
#include <cstdio>

#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/simd/cpu_features.h"
#include "nn/ops/simd/simd_kernels.h"

namespace {

const char* lut_force_name(qmcu::nn::ops::lut::LutForce f) {
  using qmcu::nn::ops::lut::LutForce;
  switch (f) {
    case LutForce::On: return "forced on (QMCU_FORCE_LUT)";
    case LutForce::Off: return "forced off (QMCU_NO_LUT)";
    case LutForce::Auto: return "auto (per-layer heuristic)";
  }
  return "?";
}

}  // namespace

int main() {
  using namespace qmcu::nn::ops::simd;
  const Isa isa = detected_isa();
  std::printf("detected ISA: %s\n", isa_name(isa));
  const DotIsa dot = detected_dot_isa();
  std::printf("detected dot ISA: %s%s\n", dot_isa_name(dot),
              dot_forced_off() ? " (demoted: QMCU_FORCE_NO_DOT)" : "");
  std::printf("LUT tier: %s\n",
              lut_force_name(qmcu::nn::ops::lut::lut_force()));
  const SimdKernels* k = kernels();
  if (k == nullptr) {
    std::printf("Simd tier: scalar fallback (Fast code paths)\n");
    return 0;
  }
  std::printf("Simd tier table: %s\n", k->name);
  std::printf("  gemm generation: %s (%s)\n",
              k->gemm_dot ? "dot-product" : "pair-madd",
              k->gemm_block_i8 ? k->name : "scalar");
  std::printf("  gemm_block_i8:   %s\n", k->gemm_block_i8 ? "simd" : "scalar");
  std::printf("  requant_i32_row: %s\n",
              k->requant_i32_row ? "simd" : "scalar");
  std::printf("  dw_accumulate:   %s\n", k->dw_accumulate ? "simd" : "scalar");
  std::printf("  requant_i8_row:  %s\n",
              k->requant_i8_row ? "simd" : "scalar");
  std::printf("  unpack_body:     %s\n", k->unpack_body ? "simd" : "scalar");
  std::printf("  lut_gemm_block:  %s\n", k->lut_gemm_block ? "simd" : "scalar");
  return 0;
}
