// simd_info — prints the runtime-detected SIMD ISA and which microkernels
// the Simd tier resolved. CI runs this after every build so the log always
// records which tier actually executed the suite (and whether
// QMCU_FORCE_SCALAR pinned it to the scalar fallback).
#include <cstdio>

#include "nn/ops/simd/cpu_features.h"
#include "nn/ops/simd/simd_kernels.h"

int main() {
  using namespace qmcu::nn::ops::simd;
  const Isa isa = detected_isa();
  std::printf("detected ISA: %s\n", isa_name(isa));
  const SimdKernels* k = kernels();
  if (k == nullptr) {
    std::printf("Simd tier: scalar fallback (Fast code paths)\n");
    return 0;
  }
  std::printf("Simd tier table: %s\n", k->name);
  std::printf("  gemm_block_i8:   %s\n", k->gemm_block_i8 ? "simd" : "scalar");
  std::printf("  requant_i32_row: %s\n",
              k->requant_i32_row ? "simd" : "scalar");
  std::printf("  dw_accumulate:   %s\n", k->dw_accumulate ? "simd" : "scalar");
  std::printf("  requant_i8_row:  %s\n",
              k->requant_i8_row ? "simd" : "scalar");
  std::printf("  unpack_body:     %s\n", k->unpack_body ? "simd" : "scalar");
  return 0;
}
