// serving_frontend.cpp — the fleet-scale serving front-end end to end.
//
// Builds a ServingFrontend over a patch-based quant model and drives it
// with open-loop Poisson traffic:
//
//   1. CoreBudget partition: the host's cores split across serving lanes,
//      each lane's WorkerPool slice pinned to its own CPUs (best-effort).
//   2. Admission control: bounded queue + per-request deadlines — overload
//      sheds requests with distinct errors instead of growing latency
//      without bound.
//   3. Batch spreading: one large submit_batch split across idle lanes.
//
// Usage: example_serving_frontend [arrival_rate_req_s] [num_requests]
//   arrival_rate_req_s  offered Poisson rate (default: ~0.9x of one
//                       core's measured capacity — near saturation)
//   num_requests        open-loop arrivals to generate (default 200)
//
// Build: cmake --build build --target example_serving_frontend
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "nn/rng.h"
#include "nn/runtime/cpu_affinity.h"
#include "nn/serving/serving_frontend.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "quant/calibration.h"

using namespace qmcu;

namespace {

using Clock = std::chrono::steady_clock;
using Frontend = nn::serving::ServingFrontend<patch::CompiledPatchQuantModel>;

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const double arg_rate = argc > 1 ? std::atof(argv[1]) : 0.0;
  const int arrivals = argc > 2 ? std::atoi(argv[2]) : 200;

  // A small MCU-scale model: compile once, serve many.
  models::ModelConfig mc;
  mc.width_multiplier = 0.35f;
  mc.resolution = 64;
  mc.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(mc);
  const nn::Tensor calib = random_input(g.shape(0), 1);
  const auto ranges =
      quant::calibrate_ranges(g, std::vector<nn::Tensor>{calib});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, qcfg);
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));

  // --- 1. the core-budgeted front-end ---------------------------------------
  nn::serving::ServingConfig cfg;
  cfg.sessions = std::min(4, std::max(2, nn::runtime::usable_cpus()));
  cfg.max_queue_depth = static_cast<std::size_t>(8 * cfg.sessions);
  cfg.policy = nn::serving::ShedPolicy::Reject;
  Frontend frontend(cfg,
                    [&](int, const std::shared_ptr<nn::ArenaSlab>& slab) {
                      auto model =
                          std::make_unique<patch::CompiledPatchQuantModel>(
                              g, plan, qcfg,
                              std::vector<patch::BranchQuantConfig>{},
                              nn::ops::KernelTier::Simd, params);
                      model->set_arena_source(slab);
                      return model;
                    });
  const auto& budget = frontend.budget();
  std::printf(
      "core budget: %d cores -> %d lanes x %d workers (%d threads), "
      "affinity %s\n",
      budget.total_cores, budget.sessions, budget.workers_per_session,
      budget.threads(),
      nn::runtime::affinity_supported() ? "supported" : "unsupported");
  for (int lane = 0; lane < budget.sessions; ++lane) {
    std::printf("  lane %d cpus:", lane);
    for (const int c : budget.lane_cpus(lane)) std::printf(" %d", c);
    std::printf("\n");
  }

  // Measure one core's sequential capacity to pick a sensible default rate.
  const nn::Tensor input = random_input(g.shape(0), 2);
  (void)frontend.run(input);  // warm
  const Clock::time_point w0 = Clock::now();
  constexpr int kWarm = 10;
  for (int i = 0; i < kWarm; ++i) (void)frontend.run(input);
  const double single_ms = ms_since(w0) / kWarm;
  const double rate =
      arg_rate > 0.0 ? arg_rate : 0.9 * 1e3 / single_ms * budget.sessions;
  std::printf("single run %.2f ms; offered rate %.0f req/s (%s)\n", single_ms,
              rate, arg_rate > 0.0 ? "from argv" : "0.9x capacity default");

  // --- 2. open-loop Poisson traffic with deadlines --------------------------
  const auto deadline_budget = std::chrono::microseconds(
      static_cast<std::int64_t>(50.0 * single_ms * 1e3));
  frontend.enable_latency_recording();
  nn::Rng rng(42);
  std::vector<std::future<nn::QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(arrivals));
  const Clock::time_point t0 = Clock::now();
  double arrival_s = 0.0;
  for (int i = 0; i < arrivals; ++i) {
    arrival_s += -std::log(1.0 - rng.uniform()) / rate;
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(arrival_s)));
    futures.push_back(frontend.submit(
        input, Frontend::Clock::now() +
                   std::chrono::duration_cast<Frontend::Clock::duration>(
                       deadline_budget)));
  }
  int ok = 0;
  int shed = 0;
  for (auto& f : futures) {
    try {
      (void)f.get();
      ++ok;
    } catch (const nn::serving::RejectedError&) {
      ++shed;
    } catch (const nn::serving::DeadlineExceededError&) {
      ++shed;
    }
  }
  const double open_ms = ms_since(t0);
  auto lat = frontend.take_latencies_ms();
  std::sort(lat.begin(), lat.end());
  const double p50 = lat.empty() ? 0.0 : lat[lat.size() / 2];
  const double p99 =
      lat.empty() ? 0.0
                  : lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  const auto stats = frontend.stats();
  std::printf(
      "open loop: %d arrivals in %.0f ms -> %.1f req/s sustained, "
      "p50 %.2f ms, p99 %.2f ms\n",
      arrivals, open_ms, 1e3 * ok / open_ms, p50, p99);
  std::printf(
      "  completed %llu, rejected %llu (queue full), expired %llu "
      "(deadline), pinned lanes %d/%d\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.expired), stats.pinned_lanes,
      budget.sessions);
  (void)shed;

  // --- 3. batch spreading ---------------------------------------------------
  constexpr int kBatch = 16;
  std::vector<nn::Tensor> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    batch.push_back(random_input(g.shape(0), 500 + i));
  }
  const auto before = frontend.per_session_requests();
  const Clock::time_point tb = Clock::now();
  auto batch_futures = frontend.submit_batch(std::move(batch));
  for (auto& f : batch_futures) (void)f.get();
  const double batch_ms = ms_since(tb);
  const auto after = frontend.per_session_requests();
  int lanes_hit = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    lanes_hit += after[i] > before[i] ? 1 : 0;
  }
  std::printf(
      "batch of %d: spread across %d/%d lanes, %.1f ms end to end\n", kBatch,
      lanes_hit, frontend.num_sessions(), batch_ms);
  return 0;
}
