// image_classification — the paper's headline workload: ImageNet-class
// classification under a 256 KB SRAM budget.
//
// Demonstrates the full execution stack rather than just the planner:
//   * float reference inference (layer-based);
//   * bit-exact patch-based inference (the Fig. 1a dataflow);
//   * integer (TFLite-Micro contract) inference from calibrated ranges;
// and then compares the deployment options a practitioner would weigh.
#include <algorithm>
#include <cstdio>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "quant/calibration.h"

namespace {

int argmax(const qmcu::nn::Tensor& t) {
  const auto d = t.data();
  return static_cast<int>(std::max_element(d.begin(), d.end()) - d.begin());
}

}  // namespace

int main() {
  using namespace qmcu;

  models::ModelConfig mcfg;
  mcfg.width_multiplier = 0.35f;
  mcfg.resolution = 96;
  mcfg.num_classes = 100;
  const nn::Graph net = models::make_mobilenet_v2(mcfg);

  data::DataConfig dcfg;
  dcfg.resolution = mcfg.resolution;
  const data::SyntheticDataset dataset(dcfg);
  const nn::Tensor image = dataset.image(42);
  const std::vector<nn::Tensor> calibration = dataset.batch(0, 2);

  // --- 1. float reference --------------------------------------------------
  const nn::Executor ref(net);
  const nn::Tensor ref_out = ref.run(image);
  std::printf("float reference:    class %3d (p = %.3f)\n", argmax(ref_out),
              ref_out.data()[static_cast<std::size_t>(argmax(ref_out))]);

  // --- 2. patch-based inference is bit-exact --------------------------------
  const patch::PatchPlan plan =
      patch::build_patch_plan(net, patch::plan_mcunetv2(net, {3, 4}));
  const patch::PatchExecutor pexec(net, plan);
  const nn::Tensor patch_out = pexec.run(image);
  bool identical = true;
  for (std::size_t i = 0; i < ref_out.data().size(); ++i) {
    identical = identical && ref_out.data()[i] == patch_out.data()[i];
  }
  std::printf("patch-based:        class %3d — %s\n", argmax(patch_out),
              identical ? "bit-identical to layer-based"
                        : "MISMATCH (bug!)");
  std::printf("  %zu branches, %.1f%% redundant MACs in the patch stage\n",
              plan.branches.size(), 100.0 * plan.redundancy_ratio());

  // --- 3. integer inference --------------------------------------------------
  const auto ranges = quant::calibrate_ranges(net, calibration);
  const auto qcfg8 =
      quant::make_quant_config(net, ranges, nn::uniform_bits(net, 8));
  const nn::QuantExecutor qexec(net, qcfg8);
  const nn::QTensor q_out = qexec.run(image);
  const nn::Tensor q_deq = nn::dequantize(q_out);
  std::printf("int8 (TFLM-style):  class %3d (p = %.3f)\n", argmax(q_deq),
              q_deq.data()[static_cast<std::size_t>(argmax(q_deq))]);

  // --- 4. deployment choices -------------------------------------------------
  const mcu::Device device = mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(device);
  const std::vector<int> bits8 = nn::uniform_bits(net, 8);
  const std::int64_t layer_peak =
      nn::plan_layer_based(net, bits8).peak_bytes;
  std::printf("\ndeployment on %s (%lld KB SRAM):\n", device.name.c_str(),
              static_cast<long long>(device.sram_bytes / 1024));
  std::printf("  layer-based int8: peak %4lld KB, %6.0f ms %s\n",
              static_cast<long long>(layer_peak / 1024),
              cm.graph_latency_ms(net, bits8),
              layer_peak > device.sram_bytes ? "(DOES NOT FIT)" : "");

  core::QuantMcuConfig qmc;
  const core::QuantMcuPlan qplan =
      core::build_quantmcu_plan(net, device, calibration, qmc);
  const core::QuantMcuEvaluation ev = core::evaluate_quantmcu(
      net, qplan, cm, dataset.batch(10, 2), qmc);
  std::printf("  QuantMCU:         peak %4.0f KB, %6.0f ms, est. Top-1 loss "
              "%.2f pp\n",
              ev.mean_peak_bytes / 1024, ev.mean_latency_ms,
              ev.top1_penalty_pp);
  return 0;
}
