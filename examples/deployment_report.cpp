// deployment_report — a small CLI that answers the practitioner's question:
// "which inference strategy fits my model on my MCU, and what does each
// cost?" Compares layer-based int8, MCUNetV2 patching, Cipolletta
// restructuring, RNNPool, and QuantMCU on a chosen model/device.
//
// Usage: deployment_report [model] [nano|h7]
//   model in: mobilenetv2 mcunet mnasnet fbnet_a ofa_cpu resnet18 vgg16
//             squeezenet inceptionv3        (default mobilenetv2)
#include <cstdio>
#include <cstring>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/weights.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"
#include "patch/restructuring.h"
#include "patch/rnnpool.h"

namespace {

using namespace qmcu;

void report(const char* strategy, double peak_kb, double bitops_m,
            double lat_ms, const mcu::Device& dev) {
  const bool fits = peak_kb * 1024 <= static_cast<double>(dev.sram_bytes);
  std::printf("  %-20s %8.0f KB %10.0f M %8.0f ms   %s\n", strategy, peak_kb,
              bitops_m, lat_ms, fits ? "fits" : "DOES NOT FIT");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qmcu;
  const char* model = argc > 1 ? argv[1] : "mobilenetv2";
  const bool h7 = argc > 2 && std::strcmp(argv[2], "h7") == 0;
  const mcu::Device dev =
      h7 ? mcu::stm32h743() : mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(dev);

  models::ModelConfig mcfg;
  mcfg.width_multiplier = h7 ? 0.5f : 0.35f;
  mcfg.resolution = h7 ? 128 : 96;
  mcfg.num_classes = 100;
  const nn::Graph g = models::make_model(model, mcfg);

  std::printf("deployment report: %s (w%.2f @ %d) on %s\n", model,
              mcfg.width_multiplier, mcfg.resolution, dev.name.c_str());
  std::printf("  %.1f MMACs, %.0f KB flash (int8 weights), SRAM budget %lld "
              "KB\n\n",
              static_cast<double>(g.total_macs()) / 1e6,
              static_cast<double>(nn::model_flash_bytes(g, 8)) / 1024,
              static_cast<long long>(dev.sram_bytes / 1024));
  std::printf("  %-20s %11s %12s %11s\n", "strategy", "peak SRAM", "BitOPs",
              "latency");

  const std::vector<int> bits8 = nn::uniform_bits(g, 8);
  report("layer-based int8",
         static_cast<double>(nn::plan_layer_based(g, bits8).peak_bytes) /
             1024,
         static_cast<double>(g.total_macs()) * 64 / 1e6,
         cm.graph_latency_ms(g, bits8), dev);

  {
    const patch::PatchPlan plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, {3, 4}));
    const patch::PatchCost pc = patch::evaluate_patch_cost(
        g, plan, patch::uniform_branch_bits(plan, 8), bits8, cm);
    report("MCUNetV2 patches", static_cast<double>(pc.peak_bytes) / 1024,
           static_cast<double>(pc.bitops) / 1e6, pc.latency_ms, dev);
  }
  {
    const patch::RestructuringResult r = patch::restructure_for_memory(g, cm);
    report("Cipolletta restr.",
           static_cast<double>(r.cost.peak_bytes) / 1024,
           static_cast<double>(r.cost.bitops) / 1e6, r.cost.latency_ms, dev);
  }
  {
    patch::RnnPoolResult r = patch::make_rnnpool_variant(g);
    models::init_parameters(r.graph, 7);
    const std::vector<int> vbits = nn::uniform_bits(r.graph, 8);
    report("RNNPool stem",
           static_cast<double>(
               nn::plan_layer_based(r.graph, vbits).peak_bytes) /
               1024,
           static_cast<double>(r.graph.total_macs()) * 64 / 1e6,
           cm.graph_latency_ms(r.graph, vbits), dev);
  }
  {
    data::DataConfig dcfg;
    dcfg.resolution = mcfg.resolution;
    const data::SyntheticDataset ds(dcfg);
    const std::vector<nn::Tensor> calib = ds.batch(0, 2);
    core::QuantMcuConfig qcfg;
    qcfg.planner = core::PatchPlannerKind::MinPeak;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, ds.batch(10, 2), qcfg);
    report("QuantMCU", ev.mean_peak_bytes / 1024, ev.mean_bitops / 1e6,
           ev.mean_latency_ms, dev);
    std::printf("\n  QuantMCU detail: %.0f%% outlier patches, est. Top-1 "
                "loss %.2f pp, search %.2f s\n",
                100.0 * ev.outlier_patch_fraction, ev.top1_penalty_pp,
                plan.search_seconds);
  }
  return 0;
}
