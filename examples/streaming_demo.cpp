// streaming_demo.cpp — the temporal-reuse streaming runtime end to end.
//
// Simulates a camera feed in front of a patch-based int8 model and shows
// what the streaming layer does with it:
//
//   1. Direct StreamingSession: a moving-object scene (most of each frame
//      unchanged) runs frame by frame; the per-frame skip counters and the
//      latency against full recompute show temporal reuse at work, and
//      every frame is verified bit-identical to full recompute.
//   2. Serving stream lanes: the same feed through ServingFrontend's
//      open_stream/submit_stream — frames of one stream run on one pinned
//      lane in FIFO order, interleaved with ordinary requests, while the
//      fleet's ServingStats count both kinds of traffic.
//   3. Drift watch: the session's ActivationStatsTracker observes the
//      quantized tail under a slowly brightening scene (a distribution the
//      calibration batch never saw) until it asks for re-calibration.
//
// Usage: example_streaming_demo [frames]
//   frames  frames per scene segment (default 48)
//
// Build: cmake --build build --target example_streaming_demo
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "nn/rng.h"
#include "nn/serving/serving_frontend.h"
#include "nn/streaming/streaming_session.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "quant/calibration.h"

using namespace qmcu;

namespace {

using Clock = std::chrono::steady_clock;
using Model = patch::CompiledPatchQuantModel;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// A synthetic camera: a static background with a small object wandering
// across it. Each frame differs from the last only around the object.
class Scene {
 public:
  Scene(nn::TensorShape shape, std::uint64_t seed)
      : background_(random_input(shape, seed)), rng_(seed + 1) {}

  nn::Tensor frame(float brightness = 0.0f) {
    const nn::TensorShape s = background_.shape();
    nn::Tensor f = background_;
    if (brightness != 0.0f) {
      for (float& v : f.data()) v += brightness;
    }
    const int side = std::max(2, s.h / 6);
    y_ = (y_ + 1) % (s.h - side);
    x_ = (x_ + 2) % (s.w - side);
    for (int y = y_; y < y_ + side; ++y) {
      for (int x = x_; x < x_ + side; ++x) {
        for (int c = 0; c < s.c; ++c) {
          f.at(y, x, c) = static_cast<float>(rng_.normal(0.0, 1.0));
        }
      }
    }
    return f;
  }

 private:
  nn::Tensor background_;
  nn::Rng rng_;
  int y_ = 0;
  int x_ = 0;
};

bool q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  return a.shape() == b.shape() && a.params() == b.params() &&
         std::memcmp(a.data().data(), b.data().data(), a.data().size()) == 0;
}

void print_stats(const nn::streaming::StreamingStats& st) {
  std::printf(
      "  frames %lld (unchanged %lld) | branches recomputed %lld / skipped "
      "%lld (%.1f%% skip) | bands run %lld / skipped %lld (%.1f%% skip) | "
      "tail rest runs %lld\n",
      static_cast<long long>(st.frames),
      static_cast<long long>(st.unchanged_frames),
      static_cast<long long>(st.branches_recomputed),
      static_cast<long long>(st.branches_skipped),
      100.0 * st.branch_skip_ratio(), static_cast<long long>(st.bands_run),
      static_cast<long long>(st.bands_skipped),
      100.0 * st.band_skip_ratio(),
      static_cast<long long>(st.tail_rest_runs));
}

}  // namespace

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 48;

  models::ModelConfig mc;
  mc.width_multiplier = 0.25f;
  mc.resolution = 48;
  mc.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(mc);
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 1),
                                 random_input(g.shape(0), 2)});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {4, 4}));
  const Model model(g, plan, qcfg);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::max(1, std::min(4, hw));
  nn::WorkerPool pool(workers);
  nn::WorkerPool* p = workers == 1 ? nullptr : &pool;

  // --- 1. direct streaming session ------------------------------------------
  std::printf("1. streaming a moving-object scene (%d frames, %dx%d grid, "
              "%d workers)\n",
              frames, plan.spec.grid_rows, plan.spec.grid_cols, workers);
  {
    Scene scene(g.shape(0), 7);
    nn::streaming::StreamingSession<Model> session;
    double stream_ms = 0.0;
    double full_ms = 0.0;
    for (int f = 0; f < frames; ++f) {
      const nn::Tensor frame = scene.frame();
      auto t0 = Clock::now();
      const nn::QTensor got = session.next(model, frame, p);
      stream_ms += ms_since(t0);
      t0 = Clock::now();
      const nn::QTensor expect = model.run(frame, p);
      full_ms += ms_since(t0);
      if (!q_identical(got, expect)) {
        std::fprintf(stderr, "FATAL: frame %d diverged from full recompute\n",
                     f);
        return 1;
      }
    }
    print_stats(session.stats());
    std::printf(
        "  all %d frames bit-identical to full recompute; "
        "%.2f ms/frame streaming vs %.2f ms/frame full (%.2fx)\n",
        frames, stream_ms / frames, full_ms / frames,
        stream_ms > 0.0 ? full_ms / stream_ms : 0.0);
  }

  // --- 2. stream lanes on the serving front-end ------------------------------
  std::printf("2. serving stream lanes (open_stream / submit_stream)\n");
  {
    nn::serving::ServingConfig cfg;
    cfg.sessions = 2;
    cfg.max_queue_depth = 0;  // streams bypass admission anyway
    nn::serving::ServingFrontend<Model> frontend(
        cfg, [&](int, const std::shared_ptr<nn::ArenaSlab>& slab) {
          auto m = std::make_unique<Model>(g, plan, qcfg);
          m->set_arena_source(slab);
          return m;
        });

    const std::uint64_t stream_id = frontend.open_stream();
    Scene scene(g.shape(0), 8);
    std::vector<std::future<nn::QTensor>> frame_futures;
    for (int f = 0; f < frames; ++f) {
      frame_futures.push_back(frontend.submit_stream(stream_id, scene.frame()));
      // Ordinary requests share the fleet with the stream.
      if (f % 8 == 0) {
        (void)frontend.submit(random_input(g.shape(0), 50 + f));
      }
    }
    for (auto& fut : frame_futures) (void)fut.get();
    const nn::streaming::StreamingStats st =
        frontend.stream_stats(stream_id).get();
    print_stats(st);
    const nn::serving::ServingStats fleet = frontend.stats();
    std::printf("  fleet: %llu streams, %llu stream frames, %llu ordinary "
                "requests completed\n",
                static_cast<unsigned long long>(fleet.streams),
                static_cast<unsigned long long>(fleet.stream_frames),
                static_cast<unsigned long long>(fleet.completed));
    frontend.close_stream(stream_id);
  }

  // --- 3. drift watch --------------------------------------------------------
  std::printf("3. drift watch: scene brightens away from calibration\n");
  {
    nn::streaming::StreamingConfig scfg;
    scfg.track_stats = true;
    nn::streaming::StreamingSession<Model> session(scfg);
    Scene scene(g.shape(0), 9);
    float brightness = 0.0f;
    int flagged_at = -1;
    for (int f = 0; f < 4 * frames; ++f) {
      (void)session.next(model, scene.frame(brightness), p);
      if (session.stats().needs_recalibration) {
        flagged_at = f;
        break;
      }
      brightness += 0.15f;  // each frame drifts further out of distribution
    }
    std::printf("  drift score %.2f after %d frames%s\n",
                session.stats().drift_score,
                static_cast<int>(session.stats().frames),
                flagged_at >= 0 ? " -> re-calibration flagged" : "");
    if (flagged_at >= 0) {
      // What a deployment would do next: fold the tracker's proposed
      // ranges into a fresh quant config and hot-swap (swap_model).
      const auto proposed =
          session.tracker().drifted_ranges(g.size());
      int widened = 0;
      for (int id = 0; id < g.size(); ++id) {
        if (proposed[static_cast<std::size_t>(id)].seen) ++widened;
      }
      std::printf("  tracker proposes refreshed ranges for %d layers "
                  "(feed into quant::make_quant_config + swap_model)\n",
                  widened);
    }
  }
  return 0;
}
