// export_deployment — the converter workflow: quantize a model offline,
// save the deployment package (model + quantization config) to disk, then
// reload it in a fresh "runtime" and verify the integer outputs match.
//
// Usage: export_deployment [output_dir]   (default /tmp)
#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/serialize.h"
#include "quant/calibration.h"

int main(int argc, char** argv) {
  using namespace qmcu;
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  const std::string model_path = dir + "/mobilenetv2_w025.qmcu";
  const std::string config_path = dir + "/mobilenetv2_w025.qcfg";

  // --- converter side -------------------------------------------------------
  models::ModelConfig mcfg;
  mcfg.width_multiplier = 0.25f;
  mcfg.resolution = 64;
  mcfg.num_classes = 10;
  const nn::Graph model = models::make_mobilenet_v2(mcfg);

  data::DataConfig dcfg;
  dcfg.resolution = mcfg.resolution;
  const data::SyntheticDataset dataset(dcfg);
  const std::vector<nn::Tensor> calib = dataset.batch(0, 3);
  const auto ranges = quant::calibrate_ranges(model, calib);
  const auto qcfg =
      quant::make_quant_config(model, ranges, nn::uniform_bits(model, 8));

  nn::save_graph(model, model_path);
  nn::save_quant_config(qcfg, config_path);
  std::printf("exported %s (%d layers, %.1f MMACs) + %s\n",
              model_path.c_str(), model.size(),
              static_cast<double>(model.total_macs()) / 1e6,
              config_path.c_str());

  // --- runtime side ---------------------------------------------------------
  const nn::Graph loaded = nn::load_graph(model_path);
  const nn::ActivationQuantConfig loaded_cfg =
      nn::load_quant_config(config_path);
  const nn::QuantExecutor runtime(loaded, loaded_cfg);

  const nn::Tensor image = dataset.image(99);
  const nn::QTensor out_runtime = runtime.run(image);
  const nn::QTensor out_converter = nn::QuantExecutor(model, qcfg).run(image);

  bool identical = out_runtime.data().size() == out_converter.data().size();
  for (std::size_t i = 0; identical && i < out_runtime.data().size(); ++i) {
    identical = out_runtime.data()[i] == out_converter.data()[i];
  }
  std::printf("reloaded package inference: %s\n",
              identical ? "bit-identical to the converter's outputs"
                        : "MISMATCH (bug!)");
  return identical ? 0 : 1;
}
