// quickstart — the 60-second tour of the QuantMCU library.
//
//   1. build a network from the model zoo;
//   2. generate a calibration batch (synthetic ImageNet-like data);
//   3. build the QuantMCU plan: patch planning + VDPC + VDQS;
//   4. evaluate the deployment on an MCU cost model and print the result.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"

int main() {
  using namespace qmcu;

  // 1. A MobileNetV2 sized for a 256 KB microcontroller.
  models::ModelConfig mcfg;
  mcfg.width_multiplier = 0.35f;
  mcfg.resolution = 96;
  mcfg.num_classes = 100;
  const nn::Graph net = models::make_mobilenet_v2(mcfg);
  std::printf("model: %s, %d layers, %.1f MMACs\n", net.name().c_str(),
              net.size(), static_cast<double>(net.total_macs()) / 1e6);

  // 2. Calibration + evaluation data.
  data::DataConfig dcfg;
  dcfg.resolution = mcfg.resolution;
  const data::SyntheticDataset dataset(dcfg);
  const std::vector<nn::Tensor> calibration = dataset.batch(0, 2);
  const std::vector<nn::Tensor> evaluation = dataset.batch(10, 3);

  // 3. Offline planning: patch plan, outlier statistics, bitwidth search.
  const mcu::Device device = mcu::arduino_nano_33_ble_sense();
  core::QuantMcuConfig qcfg;  // paper defaults: phi = 0.96, lambda = 0.6
  const core::QuantMcuPlan plan =
      core::build_quantmcu_plan(net, device, calibration, qcfg);
  std::printf("patch plan: %dx%d grid, cut at layer %d; VDQS searched %zu "
              "branches in %.0f ms\n",
              plan.patch_plan.spec.grid_rows, plan.patch_plan.spec.grid_cols,
              plan.patch_plan.spec.split_layer, plan.searches.size(),
              plan.search_seconds * 1e3);

  // 4. What the deployment costs on the device.
  const mcu::CostModel cost_model(device);
  const core::QuantMcuEvaluation ev =
      core::evaluate_quantmcu(net, plan, cost_model, evaluation, qcfg);
  const core::QuantMcuEvaluation baseline =
      core::evaluate_uniform_patch(net, plan.patch_plan, cost_model,
                                   evaluation);

  std::printf("\n%24s %14s %14s\n", "", "int8 patch", "QuantMCU");
  std::printf("%24s %13.0fM %13.0fM\n", "BitOPs",
              baseline.mean_bitops / 1e6, ev.mean_bitops / 1e6);
  std::printf("%24s %13.0fms %13.0fms\n", "latency",
              baseline.mean_latency_ms, ev.mean_latency_ms);
  std::printf("%24s %13.0fKB %13.0fKB\n", "peak SRAM",
              baseline.mean_peak_bytes / 1024, ev.mean_peak_bytes / 1024);
  std::printf("%24s %13.2fpp %13.2fpp\n", "est. Top-1 loss",
              baseline.top1_penalty_pp, ev.top1_penalty_pp);
  std::printf("\n%.0f%% of patches carried outlier values and ran at 8-bit\n",
              100.0 * ev.outlier_patch_fraction);
  return 0;
}
