// object_detection — the paper's second workload: Pascal-VOC-class
// detection backbones under MCU constraints.
//
// Detection inputs concentrate their salient (outlier-carrying) values
// inside object regions, which is exactly the structure VDPC exploits:
// patches covering objects run at 8-bit, background patches go sub-byte.
// This example visualises the per-patch classification for a few inputs
// and reports the resulting cost spread.
#include <cstdio>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"

int main() {
  using namespace qmcu;

  models::ModelConfig mcfg;
  mcfg.width_multiplier = 0.5f;
  mcfg.resolution = 96;
  mcfg.num_classes = 20;  // VOC classes
  const nn::Graph net = models::make_mobilenet_v2(mcfg);

  data::DataConfig dcfg;
  dcfg.kind = data::DatasetKind::PascalVocLike;
  dcfg.resolution = mcfg.resolution;
  const data::SyntheticDataset dataset(dcfg);
  const std::vector<nn::Tensor> calibration = dataset.batch(0, 2);

  const mcu::Device device = mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(device);
  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 4;  // finer grid: objects localise better
  const core::QuantMcuPlan plan =
      core::build_quantmcu_plan(net, device, calibration, qcfg);

  std::printf("VDPC patch maps ('#' = outlier class -> 8-bit branch, "
              "'.' = non-outlier -> mixed precision):\n");
  for (int index : {10, 11, 12}) {
    const nn::Tensor image = dataset.image(index);
    const core::PatchClassification cls =
        core::classify_patches(image, plan.patch_plan, qcfg.vdpc);
    std::printf("\nimage %d (|x-mu| > %.2f marks an outlier):\n", index,
                cls.threshold);
    for (int r = 0; r < plan.patch_plan.spec.grid_rows; ++r) {
      std::printf("    ");
      for (int c = 0; c < plan.patch_plan.spec.grid_cols; ++c) {
        const std::size_t b = static_cast<std::size_t>(
            r * plan.patch_plan.spec.grid_cols + c);
        std::printf("%c", cls.outlier[b] ? '#' : '.');
      }
      std::printf("\n");
    }
    const core::QuantMcuEvaluation ev = core::evaluate_quantmcu(
        net, plan, cm, std::vector<nn::Tensor>{image}, qcfg);
    std::printf("    -> %.0fM BitOPs, %.0f ms, peak %.0f KB\n",
                ev.mean_bitops / 1e6, ev.mean_latency_ms,
                ev.mean_peak_bytes / 1024);
  }

  // Aggregate over a small eval set.
  const core::QuantMcuEvaluation ev = core::evaluate_quantmcu(
      net, plan, cm, dataset.batch(10, 4), qcfg);
  const core::AccuracyBase base = core::base_accuracy("mobilenetv2");
  std::printf("\naggregate (4 images): %.0fM BitOPs, %.0f ms, est. mAP "
              "%.1f%% (base %.1f%%)\n",
              ev.mean_bitops / 1e6, ev.mean_latency_ms,
              base.voc_map - ev.map_penalty_pp, base.voc_map);
  return 0;
}
