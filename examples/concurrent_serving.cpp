// concurrent_serving.cpp — the parallel runtime end to end.
//
// Demonstrates the axes the runtime stacks on top of compiled plans:
//
//   1. Intra-request parallelism: one patch-based inference scheduled as a
//      dependency-driven task graph over a WorkerPool — branch tasks merge
//      into the assembled map, tail row bands start on spare workers as
//      soon as their input rows are ready, and the barrier runtime stays
//      available for comparison. Bit-identical to the sequential run at
//      every worker count.
//   2. Inter-request parallelism: a SessionPool of pre-compiled
//      (model, arena, scratch) triples serving submit()-style traffic from
//      several client threads, sharing one weight conversion — plus
//      batched submission (one queue wakeup per batch).
//
// Build: cmake --build build --target example_concurrent_serving
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/rng.h"
#include "nn/runtime/session_pool.h"
#include "nn/runtime/worker_pool.h"
#include "patch/mcunetv2.h"
#include "patch/patch_quant_executor.h"
#include "quant/calibration.h"

using namespace qmcu;

namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const nn::Tensor input = random_input(g.shape(0), 7);
  const auto ranges =
      quant::calibrate_ranges(g, std::vector<nn::Tensor>{input});
  const auto qcfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, qcfg);

  // --- 1. parallel patch execution ----------------------------------------
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {3, 4}));
  const patch::PatchQuantExecutor pexec(g, plan, qcfg,
                                        nn::ops::KernelTier::Fast, params);
  std::printf("parallel patch stage: %d branches, cut layer %d\n",
              static_cast<int>(plan.branches.size()),
              plan.spec.split_layer);

  std::printf("  pipelined tail: %d row-banded layers before the join\n",
              static_cast<int>(pexec.compiled().pipelined_tail().size()));

  const nn::QTensor sequential = pexec.run(input);
  for (const int workers : {1, 2, 4}) {
    nn::WorkerPool pool(workers);
    (void)pexec.run_parallel(input, &pool);  // warm worker contexts
    constexpr int kReps = 5;
    double pipelined_ms = 0.0;
    double barrier_ms = 0.0;
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r) {
        const nn::QTensor out = pexec.run_parallel(input, &pool);
        if (!std::equal(out.data().begin(), out.data().end(),
                        sequential.data().begin())) {
          std::printf("  !! worker count %d diverged from sequential\n",
                      workers);
          return 1;
        }
      }
      pipelined_ms = ms_since(t0) / kReps;
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      for (int r = 0; r < kReps; ++r) {
        (void)pexec.run_parallel_barrier(input, &pool);
      }
      barrier_ms = ms_since(t0) / kReps;
    }
    if (workers == 1) {
      // A 1-worker pool takes the sequential path: unified single arena.
      std::printf(
          "  %d worker(s): %6.2f ms/run  bit-exact  arena %lld B (unified, "
          "sequential path)\n",
          workers, pipelined_ms,
          static_cast<long long>(pexec.compiled().arena_bytes()));
    } else {
      const auto& pplan = pexec.compiled().pipelined_plan(workers);
      std::printf(
          "  %d worker(s): %6.2f ms/run pipelined, %6.2f ms/run barrier  "
          "bit-exact  arena %lld B (%d x %lld slice + %lld shared)\n",
          workers, pipelined_ms, barrier_ms,
          static_cast<long long>(pplan.total_bytes()), workers,
          static_cast<long long>(pplan.slice_stride),
          static_cast<long long>(pplan.shared.peak_bytes));
    }
  }

  // --- 2. concurrent serving ----------------------------------------------
  constexpr int kSessions = 3;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 6;
  nn::SessionPool<nn::CompiledQuantModel> sessions(kSessions, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, qcfg, nn::ops::KernelTier::Fast, params);
  });
  std::printf("session pool: %d sessions, %d clients x %d requests\n",
              sessions.num_sessions(), kClients, kRequestsPerClient);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        (void)sessions.run(random_input(g.shape(0), 100 + c * 31 + r));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double total_ms = ms_since(t0);
  const int total = kClients * kRequestsPerClient;
  std::printf(
      "  served %llu requests in %.1f ms (%.1f req/s), queue drained: %s\n",
      static_cast<unsigned long long>(sessions.completed()), total_ms,
      1000.0 * total / total_ms, sessions.pending() == 0 ? "yes" : "no");
  const auto per_session = sessions.per_session_requests();
  std::printf("  per-session request counts:");
  for (const auto n : per_session) {
    std::printf(" %llu", static_cast<unsigned long long>(n));
  }
  std::printf("\n");

  // --- 3. batched submission ----------------------------------------------
  constexpr int kBatch = 8;
  std::vector<nn::Tensor> batch;
  batch.reserve(kBatch);
  for (int i = 0; i < kBatch; ++i) {
    batch.push_back(random_input(g.shape(0), 500 + i));
  }
  const auto tb = std::chrono::steady_clock::now();
  auto futures = sessions.submit_batch(std::move(batch));
  for (auto& f : futures) (void)f.get();
  std::printf("  batch of %d: one queue wakeup, %.1f ms end to end\n",
              kBatch, ms_since(tb));
  return 0;
}
