# Cross toolchain for the qemu-aarch64 CI leg: builds the whole tree with
# the Debian/Ubuntu aarch64 cross compiler and registers qemu-user as the
# test-run emulator, so `ctest` executes the NEON kernel tables (vtbl LUT
# body, Q31 requantize epilogues, the sdot GEMM generation) that x86 legs
# can never reach. qemu's default CPU model ("max") exposes the dotprod
# hwcap, so cpu_features' getauxval probe selects the sdot table at runtime.
set(CMAKE_SYSTEM_NAME Linux)
set(CMAKE_SYSTEM_PROCESSOR aarch64)

set(CMAKE_C_COMPILER aarch64-linux-gnu-gcc)
set(CMAKE_CXX_COMPILER aarch64-linux-gnu-g++)

set(CMAKE_FIND_ROOT_PATH /usr/aarch64-linux-gnu)
set(CMAKE_FIND_ROOT_PATH_MODE_PROGRAM NEVER)
set(CMAKE_FIND_ROOT_PATH_MODE_LIBRARY ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_INCLUDE ONLY)
set(CMAKE_FIND_ROOT_PATH_MODE_PACKAGE ONLY)

# -L points qemu's ELF loader at the cross sysroot for the dynamic linker
# and libstdc++.
set(CMAKE_CROSSCOMPILING_EMULATOR "qemu-aarch64;-L;/usr/aarch64-linux-gnu")
