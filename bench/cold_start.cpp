// cold_start — time-to-ready and fleet RSS for QMCP plan artifacts
// (nn/plan_artifact.h).
//
// Measures, on the mbv2 zoo model at MCU scale:
//
//   1. Calibration: one sequential inference (the machine-speed anchor
//      bench_guard.py scales cross-host comparisons with).
//   2. Compile-from-graph cold start, disk to ready: what a serving
//      process without an artifact actually does at startup — load the
//      saved graph (.qmcu) and quant config (.qmcq) from disk, then
//      construct a CompiledQuantModel (weight quantization, bias
//      rescale, k-major panel packing, offset rows, arena placement).
//   3. Artifact cold start, disk to ready: load_compiled — the mmap,
//      per-section CRC sweep, topology parse, and span rebinding; no
//      weight copy or packing (panels are adopted from the mapping).
//   4. The speedup ratio (2)/(3), emitted as a guarded "x" entry: it must
//      not drop below the committed baseline, and --require-speedup X
//      turns it into a hard gate (the acceptance criterion: >= 10x).
//   5. Time-to-first-inference for both paths (setup + one run), and the
//      one-time artifact bake cost, as informational entries.
//   6. Fleet RSS sharing: fork a child that maps the SAME artifact and
//      serves from it; the child's private footprint (smaps_rollup
//      Private_Clean+Private_Dirty around model construction) must be a
//      small fraction of the artifact size, because its weights, panels
//      and tables are MAP_SHARED views of pages the parent already
//      faulted in. Skipped (informational zeros) where /proc is absent.
//
// Every timed path is also bit-exactness-checked against the in-memory
// model — a mismatch aborts the bench.
//
// Writes BENCH_cold_start.json (JsonReport format).
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "nn/compiled_model.h"
#include "nn/plan_artifact.h"
#include "nn/rng.h"
#include "nn/serialize.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

bool q_equal(const nn::QTensor& a, const nn::QTensor& b) {
  if (a.shape() != b.shape() || !(a.params() == b.params())) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

// Private_Clean + Private_Dirty of this process, in KiB (-1: no /proc).
long private_kib() {
  std::ifstream is("/proc/self/smaps_rollup");
  if (!is) return -1;
  std::string line;
  long total = 0;
  bool found = false;
  while (std::getline(is, line)) {
    long v = 0;
    if (std::sscanf(line.c_str(), "Private_Clean: %ld kB", &v) == 1 ||
        std::sscanf(line.c_str(), "Private_Dirty: %ld kB", &v) == 1) {
      total += v;
      found = true;
    }
  }
  return found ? total : -1;
}

// Median of `reps` timed runs of `body` (ms). The first call is NOT
// discarded — cold start is the quantity under test — but the page cache
// is warm for every rep (the writer just produced the file), which is the
// serving-fleet steady state: artifact written once, mapped N times.
template <class Body>
double median_ms(int reps, const Body& body) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    times.push_back(ms_since(t0));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int run(int argc, char** argv) {
  double require_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-speedup") == 0 && i + 1 < argc) {
      require_speedup = std::atof(argv[++i]);
    }
  }

  bench::JsonReport report("cold_start");

  models::ModelConfig mc;
  mc.width_multiplier = 0.25f;
  mc.resolution = 48;
  mc.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(mc);
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 1),
                                      random_input(g.shape(0), 2)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::Tensor in = random_input(g.shape(0), 3);
  const std::string path = "cold_start_mbv2.qmcp";
  const std::string graph_path = "cold_start_mbv2.qmcu";
  const std::string cfg_path = "cold_start_mbv2.qmcq";

  // Both cold-start paths begin from files on disk: the baseline process
  // ships the graph + quant config, the artifact process ships the .qmcp.
  nn::save_graph(g, graph_path);
  nn::save_quant_config(cfg, cfg_path);

  // One-time bake cost (writer side; amortized over every later load).
  const auto bake0 = Clock::now();
  nn::compile_to_artifact(g, cfg, path);
  const double bake_ms = ms_since(bake0);

  // Machine-speed anchor + the golden output every timed path must match.
  const nn::CompiledQuantModel ref(g, cfg);
  (void)ref.run(in);  // panel caches warm before the anchor sample
  const auto anchor0 = Clock::now();
  const nn::QTensor want = ref.run(in);
  report.add("cold_start/calibration/RefSingleRun", ms_since(anchor0), "ms");

  constexpr int kReps = 15;

  // Compile-from-graph: the disk-to-ready work load_compiled removes.
  const double compile_ms = median_ms(kReps, [&] {
    const nn::Graph g2 = nn::load_graph(graph_path);
    const auto cfg2 = nn::load_quant_config(cfg_path);
    const nn::CompiledQuantModel model(g2, cfg2);
    if (!q_equal(model.run(in), want)) {
      std::fprintf(stderr, "FATAL: compiled model output mismatch\n");
      std::exit(1);
    }
  });
  // Subtract the shared inference to isolate setup; keep TTFI too.
  const double compile_setup_ms = median_ms(kReps, [&] {
    const nn::Graph g2 = nn::load_graph(graph_path);
    const auto cfg2 = nn::load_quant_config(cfg_path);
    nn::CompiledQuantModel model(g2, cfg2);
  });

  const double load_ms = median_ms(kReps, [&] {
    const nn::LoadedModel loaded = nn::load_compiled(path);
    if (!q_equal(loaded.model->run(in), want)) {
      std::fprintf(stderr, "FATAL: artifact model output mismatch\n");
      std::exit(1);
    }
  });
  const double load_setup_ms =
      median_ms(kReps, [&] { (void)nn::load_compiled(path); });

  const double speedup =
      load_setup_ms > 0.0 ? compile_setup_ms / load_setup_ms : 0.0;
  std::printf("cold start (mbv2 w%.2f r%d, int8):\n", mc.width_multiplier,
              mc.resolution);
  std::printf("  bake once:            %8.3f ms\n", bake_ms);
  std::printf("  compile from disk:    %8.3f ms  (TTFI %8.3f ms)\n",
              compile_setup_ms, compile_ms);
  std::printf("  load_compiled (mmap): %8.3f ms  (TTFI %8.3f ms)\n",
              load_setup_ms, load_ms);
  std::printf("  model-ready speedup:  %8.2fx\n", speedup);
  report.add("cold_start/bake_ms", bake_ms, "info_ms");
  report.add("cold_start/compile_ms", compile_setup_ms, "info_ms");
  report.add("cold_start/load_ms", load_setup_ms, "info_ms");
  report.add("cold_start/compile_ttfi_ms", compile_ms, "info_ms");
  report.add("cold_start/load_ttfi_ms", load_ms, "info_ms");
  report.add("cold_start/speedup_x", speedup, "x");

  // --- fleet RSS sharing ---------------------------------------------------
  // Parent maps the artifact and faults every weight page in (one run).
  // The forked child re-maps the same file and serves from it; everything
  // but its arena and activation buffers must be shared pages.
  const auto parent_art = nn::PlanArtifact::map(path);
  {
    const auto parent_model = parent_art->make_quant_model();
    (void)parent_model->run(in);
  }
  const double artifact_kib =
      static_cast<double>(parent_art->mapped_bytes()) / 1024.0;
  double child_private_kib = -1.0;
  int pipefd[2];
  if (private_kib() >= 0 && ::pipe(pipefd) == 0) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      ::close(pipefd[0]);
      const long before = private_kib();
      const auto art = nn::PlanArtifact::map(path);
      const auto model = art->make_quant_model();
      const bool ok = q_equal(model->run(in), want);
      const long delta = ok ? std::max(0L, private_kib() - before) : -1L;
      (void)!::write(pipefd[1], &delta, sizeof(delta));
      ::close(pipefd[1]);
      ::_exit(ok ? 0 : 1);
    }
    ::close(pipefd[1]);
    long delta = -1;
    if (pid > 0 && ::read(pipefd[0], &delta, sizeof(delta)) == sizeof(delta)) {
      child_private_kib = static_cast<double>(delta);
    }
    ::close(pipefd[0]);
    int status = 0;
    if (pid > 0) ::waitpid(pid, &status, 0);
    if (pid > 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      std::fprintf(stderr, "FATAL: forked child mismatch on shared mapping\n");
      return 1;
    }
  }
  if (child_private_kib >= 0.0) {
    std::printf("  fleet sharing: artifact %.0f KiB, forked serving child "
                "adds %.0f KiB private\n",
                artifact_kib, child_private_kib);
    report.add("cold_start/fork/artifact_kib", artifact_kib, "KiB");
    report.add("cold_start/fork/child_private_kib", child_private_kib, "KiB");
  } else {
    std::printf("  fleet sharing: /proc/self/smaps_rollup unavailable, "
                "skipped\n");
  }

  report.write();
  std::remove(path.c_str());
  std::remove(graph_path.c_str());
  std::remove(cfg_path.c_str());

  if (require_speedup > 0.0) {
    if (speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: cold-start speedup %.2fx below required %.2fx\n",
                   speedup, require_speedup);
      return 1;
    }
    std::printf("PASS: cold-start speedup %.2fx >= required %.2fx\n", speedup,
                require_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace qmcu

int main(int argc, char** argv) { return qmcu::run(argc, argv); }
