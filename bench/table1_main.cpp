// Table I — QuantMCU vs layer-based inference and three state-of-the-art
// patch-based inference methods (MCUNetV2, Cipolletta et al., RNNPool) on
// MobileNetV2, across two MCUs and two datasets.
//
// Reported per cell: peak SRAM (KB), BitOPs (M), inference latency (ms).
// Paper reference values are printed alongside for the headline
// Arduino/ImageNet column. The expected orderings:
//   peak:    QuantMCU < Cipolletta < MCUNetV2 < RNNPool ~ layer
//   BitOPs:  QuantMCU < layer < RNNPool < MCUNetV2 < Cipolletta
//   latency: QuantMCU < layer < RNNPool < MCUNetV2 < Cipolletta
#include "bench_common.h"

#include "models/weights.h"
#include "patch/restructuring.h"
#include "patch/rnnpool.h"

namespace {

using namespace qmcu;

struct Cell {
  double peak_kb = 0.0;
  double bitops_m = 0.0;
  double latency_ms = 0.0;
};

void print_row(const char* method, const Cell& c) {
  std::printf("  %-18s %10.0f %10.0f %10.0f\n", method, c.peak_kb,
              c.bitops_m, c.latency_ms);
}

void run_platform(const char* platform_name, const mcu::Device& dev,
                  data::DatasetKind kind, const models::ModelConfig& scale) {
  const mcu::CostModel cm(dev);
  const nn::Graph g = models::make_mobilenet_v2(scale);
  const auto ds = bench::dataset_for(kind, scale.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const std::vector<nn::Tensor> eval = ds.batch(8, 2);
  const std::vector<int> bits8 = nn::uniform_bits(g, 8);

  std::printf("\n%s / %s  (MobileNetV2 w%.2f @ %d, %.0f MMACs)\n",
              platform_name, data::dataset_name(kind),
              scale.width_multiplier, scale.resolution,
              static_cast<double>(g.total_macs()) / 1e6);
  std::printf("  %-18s %10s %10s %10s\n", "method", "peak(KB)", "BitOPs(M)",
              "lat(ms)");

  // --- layer-based ---------------------------------------------------------
  {
    Cell c;
    c.peak_kb =
        static_cast<double>(nn::plan_layer_based(g, bits8).peak_bytes) / 1024;
    c.bitops_m = static_cast<double>(g.total_macs()) * 64 / 1e6;
    c.latency_ms = cm.graph_latency_ms(g, bits8);
    print_row("Layer-Based", c);
  }

  // --- MCUNetV2 ------------------------------------------------------------
  const patch::PatchPlan mcunet_plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {3, 4}));
  {
    const patch::PatchCost pc = patch::evaluate_patch_cost(
        g, mcunet_plan, patch::uniform_branch_bits(mcunet_plan, 8), bits8, cm);
    print_row("MCUNetV2",
              {static_cast<double>(pc.peak_bytes) / 1024,
               static_cast<double>(pc.bitops) / 1e6, pc.latency_ms});
  }

  // --- Cipolletta et al. (restructuring for minimum peak) ------------------
  {
    const patch::RestructuringResult r =
        patch::restructure_for_memory(g, cm);
    print_row("Cipolletta et al.",
              {static_cast<double>(r.cost.peak_bytes) / 1024,
               static_cast<double>(r.cost.bitops) / 1e6, r.cost.latency_ms});
  }

  // --- RNNPool (stem replaced by aggressive pooling block) -----------------
  {
    patch::RnnPoolResult r = patch::make_rnnpool_variant(g);
    models::init_parameters(r.graph, scale.seed + 1);
    const std::vector<int> vbits8 = nn::uniform_bits(r.graph, 8);
    Cell c;
    c.peak_kb = static_cast<double>(
                    nn::plan_layer_based(r.graph, vbits8).peak_bytes) /
                1024;
    c.bitops_m = static_cast<double>(r.graph.total_macs()) * 64 / 1e6;
    c.latency_ms = cm.graph_latency_ms(r.graph, vbits8);
    print_row("RNNPool", c);
  }

  // --- QuantMCU --------------------------------------------------------------
  {
    core::QuantMcuConfig qcfg;
    qcfg.planner = core::PatchPlannerKind::MinPeak;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, eval, qcfg);
    print_row("QuantMCU", {ev.mean_peak_bytes / 1024, ev.mean_bitops / 1e6,
                           ev.mean_latency_ms});
    std::printf("  (outlier-class patches: %.0f%%; VDQS search %.2fs)\n",
                100.0 * ev.outlier_patch_fraction, plan.search_seconds);
  }
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Table I",
                     "QuantMCU vs patch-based inference methods");
  std::printf(
      "paper, Arduino/ImageNet column: layer 244KB/1536M/617ms, MCUNetV2 "
      "196KB/1690M/741ms,\n  Cipolletta 122KB/1721M/784ms, RNNPool "
      "226KB/1582M/640ms, QuantMCU 78KB/719M/486ms\n");

  run_platform("Arduino Nano 33 BLE Sense", mcu::arduino_nano_33_ble_sense(),
               data::DatasetKind::ImageNetLike, bench::nano_imagenet_scale());
  run_platform("Arduino Nano 33 BLE Sense", mcu::arduino_nano_33_ble_sense(),
               data::DatasetKind::PascalVocLike, bench::nano_voc_scale());
  run_platform("STM32H743", mcu::stm32h743(),
               data::DatasetKind::ImageNetLike, bench::h7_imagenet_scale());
  run_platform("STM32H743", mcu::stm32h743(),
               data::DatasetKind::PascalVocLike, bench::h7_voc_scale());
  return 0;
}
