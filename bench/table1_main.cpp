// Table I — QuantMCU vs layer-based inference and three state-of-the-art
// patch-based inference methods (MCUNetV2, Cipolletta et al., RNNPool) on
// MobileNetV2, across two MCUs and two datasets.
//
// Reported per cell: peak SRAM (KB), BitOPs (M), inference latency (ms).
// Paper reference values are printed alongside for the headline
// Arduino/ImageNet column. The expected orderings:
//   peak:    QuantMCU < Cipolletta < MCUNetV2 < RNNPool ~ layer
//   BitOPs:  QuantMCU < layer < RNNPool < MCUNetV2 < Cipolletta
//   latency: QuantMCU < layer < RNNPool < MCUNetV2 < Cipolletta
//
// For the headline platform the searched plan is additionally *executed*:
// the deployment configs are materialised, QuantizedParameters are built
// once and shared between the outlier-class (uniform int8) and mixed
// executors, and both compiled arena runtimes process an eval image —
// printing the static arena each would pin in SRAM. Results are mirrored
// to BENCH_table1_main.json (see bench_common.h).
#include "bench_common.h"

#include <chrono>
#include <limits>

#include "models/weights.h"
#include "patch/restructuring.h"
#include "patch/rnnpool.h"
#include "quant/calibration.h"

namespace {

using namespace qmcu;

struct Cell {
  double peak_kb = 0.0;
  double bitops_m = 0.0;
  double latency_ms = 0.0;
};

void print_row(const char* method, const Cell& c) {
  std::printf("  %-18s %10.0f %10.0f %10.0f\n", method, c.peak_kb,
              c.bitops_m, c.latency_ms);
}

void report_row(bench::JsonReport& report, const std::string& platform,
                const char* method, const Cell& c) {
  const std::string base = "table1/" + platform + "/" + method + "/";
  report.add(base + "peak_kb", c.peak_kb, "KB");
  report.add(base + "bitops_m", c.bitops_m, "MBitOPs");
  report.add(base + "latency_ms", c.latency_ms, "ms");
}

// Executes the searched deployment on the host: one shared weight
// conversion, two compiled patch runtimes (outlier-class uniform int8 and
// the mixed-precision assignment) over one static arena each.
void run_deployment(const nn::Graph& g, const core::QuantMcuPlan& plan,
                    std::span<const nn::Tensor> calib,
                    const nn::Tensor& image, const std::string& platform,
                    bench::JsonReport& report) {
  const auto ranges = quant::calibrate_ranges(g, calib);
  const nn::ActivationQuantConfig deploy_cfg =
      core::make_deployment_quant_config(g, plan, ranges);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);

  // One weight conversion feeds both executors (and any sweep variants).
  const auto params = nn::QuantizedParameters::build_shared(g, deploy_cfg);
  const patch::PatchQuantExecutor uniform(g, plan.patch_plan, deploy_cfg,
                                          nn::ops::KernelTier::Fast, params);
  const patch::PatchQuantExecutor mixed(g, plan.patch_plan, deploy_cfg,
                                        branch_cfgs,
                                        nn::ops::KernelTier::Fast, params);

  // Best of several warm runs: a single wall-clock sample on a shared
  // runner is too jittery for a trajectory artifact.
  const auto time_run = [&](const patch::PatchQuantExecutor& exec) {
    (void)exec.run(image);  // warm the arena + weight panels
    double best = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const nn::QTensor out = exec.run(image);
      const auto t1 = std::chrono::steady_clock::now();
      (void)out;
      best = std::min(
          best, std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    return best;
  };
  const double uniform_ms = time_run(uniform);
  const double mixed_ms = time_run(mixed);

  const double uniform_arena_kb =
      static_cast<double>(uniform.compiled().arena_bytes()) / 1024;
  const double mixed_arena_kb =
      static_cast<double>(mixed.compiled().arena_bytes()) / 1024;
  std::printf(
      "  (executed: uniform %.1f ms / %.0f KB arena, mixed %.1f ms / %.0f "
      "KB arena, shared weight conversion)\n",
      uniform_ms, uniform_arena_kb, mixed_ms, mixed_arena_kb);
  report.add("table1/" + platform + "/executed/uniform_host_ms", uniform_ms,
             "ms");
  report.add("table1/" + platform + "/executed/mixed_host_ms", mixed_ms,
             "ms");
  report.add("table1/" + platform + "/executed/uniform_arena_kb",
             uniform_arena_kb, "KB");
  report.add("table1/" + platform + "/executed/mixed_arena_kb",
             mixed_arena_kb, "KB");
}

void run_platform(const char* platform_name, const std::string& slug,
                  const mcu::Device& dev, data::DatasetKind kind,
                  const models::ModelConfig& scale,
                  bench::JsonReport& report, bool execute_deployment) {
  const mcu::CostModel cm(dev);
  const nn::Graph g = models::make_mobilenet_v2(scale);
  const auto ds = bench::dataset_for(kind, scale.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const std::vector<nn::Tensor> eval = ds.batch(8, 2);
  const std::vector<int> bits8 = nn::uniform_bits(g, 8);

  std::printf("\n%s / %s  (MobileNetV2 w%.2f @ %d, %.0f MMACs)\n",
              platform_name, data::dataset_name(kind),
              scale.width_multiplier, scale.resolution,
              static_cast<double>(g.total_macs()) / 1e6);
  std::printf("  %-18s %10s %10s %10s\n", "method", "peak(KB)", "BitOPs(M)",
              "lat(ms)");

  // --- layer-based ---------------------------------------------------------
  {
    Cell c;
    c.peak_kb =
        static_cast<double>(nn::plan_layer_based(g, bits8).peak_bytes) / 1024;
    c.bitops_m = static_cast<double>(g.total_macs()) * 64 / 1e6;
    c.latency_ms = cm.graph_latency_ms(g, bits8);
    print_row("Layer-Based", c);
    report_row(report, slug, "layer_based", c);
    // The honest single-arena figure: feature maps + the Fast backend's
    // im2col/GEMM scratch high-water (satellite of the arena planner).
    const nn::MemoryPlan mp = nn::plan_layer_based(g, bits8);
    report.add("table1/" + slug + "/layer_based/peak_with_scratch_kb",
               static_cast<double>(mp.total_peak_bytes) / 1024, "KB");
  }

  // --- MCUNetV2 ------------------------------------------------------------
  const patch::PatchPlan mcunet_plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {3, 4}));
  {
    const patch::PatchCost pc = patch::evaluate_patch_cost(
        g, mcunet_plan, patch::uniform_branch_bits(mcunet_plan, 8), bits8, cm);
    const Cell c{static_cast<double>(pc.peak_bytes) / 1024,
                 static_cast<double>(pc.bitops) / 1e6, pc.latency_ms};
    print_row("MCUNetV2", c);
    report_row(report, slug, "mcunetv2", c);
  }

  // --- Cipolletta et al. (restructuring for minimum peak) ------------------
  {
    const patch::RestructuringResult r =
        patch::restructure_for_memory(g, cm);
    const Cell c{static_cast<double>(r.cost.peak_bytes) / 1024,
                 static_cast<double>(r.cost.bitops) / 1e6, r.cost.latency_ms};
    print_row("Cipolletta et al.", c);
    report_row(report, slug, "cipolletta", c);
  }

  // --- RNNPool (stem replaced by aggressive pooling block) -----------------
  {
    patch::RnnPoolResult r = patch::make_rnnpool_variant(g);
    models::init_parameters(r.graph, scale.seed + 1);
    const std::vector<int> vbits8 = nn::uniform_bits(r.graph, 8);
    Cell c;
    c.peak_kb = static_cast<double>(
                    nn::plan_layer_based(r.graph, vbits8).peak_bytes) /
                1024;
    c.bitops_m = static_cast<double>(r.graph.total_macs()) * 64 / 1e6;
    c.latency_ms = cm.graph_latency_ms(r.graph, vbits8);
    print_row("RNNPool", c);
    report_row(report, slug, "rnnpool", c);
  }

  // --- QuantMCU --------------------------------------------------------------
  {
    core::QuantMcuConfig qcfg;
    qcfg.planner = core::PatchPlannerKind::MinPeak;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, eval, qcfg);
    const Cell c{ev.mean_peak_bytes / 1024, ev.mean_bitops / 1e6,
                 ev.mean_latency_ms};
    print_row("QuantMCU", c);
    report_row(report, slug, "quantmcu", c);
    std::printf("  (outlier-class patches: %.0f%%; VDQS search %.2fs)\n",
                100.0 * ev.outlier_patch_fraction, plan.search_seconds);
    if (execute_deployment) {
      run_deployment(g, plan, calib, eval.front(), slug, report);
    }
  }
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Table I",
                     "QuantMCU vs patch-based inference methods");
  std::printf(
      "paper, Arduino/ImageNet column: layer 244KB/1536M/617ms, MCUNetV2 "
      "196KB/1690M/741ms,\n  Cipolletta 122KB/1721M/784ms, RNNPool "
      "226KB/1582M/640ms, QuantMCU 78KB/719M/486ms\n");

  bench::JsonReport report("table1_main");
  run_platform("Arduino Nano 33 BLE Sense", "arduino_imagenet",
               mcu::arduino_nano_33_ble_sense(),
               data::DatasetKind::ImageNetLike, bench::nano_imagenet_scale(),
               report, /*execute_deployment=*/true);
  run_platform("Arduino Nano 33 BLE Sense", "arduino_voc",
               mcu::arduino_nano_33_ble_sense(),
               data::DatasetKind::PascalVocLike, bench::nano_voc_scale(),
               report, false);
  run_platform("STM32H743", "h7_imagenet", mcu::stm32h743(),
               data::DatasetKind::ImageNetLike, bench::h7_imagenet_scale(),
               report, false);
  run_platform("STM32H743", "h7_voc", mcu::stm32h743(),
               data::DatasetKind::PascalVocLike, bench::h7_voc_scale(),
               report, false);
  report.write();
  return 0;
}
