// Table III — the λ hyperparameter sweep. λ weighs the accuracy term Ω
// against the computation term Φ in the quantization score (Eq. 6): larger
// λ keeps feature maps at higher precision, raising both Top-1 and BitOPs.
#include "bench_common.h"

int main() {
  using namespace qmcu;
  bench::print_title("Table III", "impact of lambda on QuantMCU");
  std::printf("paper: lambda 0.2..0.8 -> Top-1 65.6..71.2%%, BitOPs "
              "7.6..18.7G (0.6 chosen)\n\n");

  const mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(dev);
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const auto ds =
      bench::dataset_for(data::DatasetKind::ImageNetLike, cfg.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const std::vector<nn::Tensor> eval = ds.batch(8, 2);
  const double base = core::base_accuracy("mobilenetv2").imagenet_top1;

  std::printf("%8s %10s %12s %14s\n", "lambda", "Top-1", "BitOPs(M)",
              "vs 8/8 patch");
  double bitops8 = 0.0;
  for (double lambda : {0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    core::QuantMcuConfig qcfg;
    qcfg.patch.grid = 3;
    qcfg.lambda = lambda;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, eval, qcfg);
    if (bitops8 == 0.0) {
      bitops8 = core::evaluate_uniform_patch(g, plan.patch_plan, cm, eval)
                    .mean_bitops;
    }
    std::printf("%8.1f %9.1f%% %12.0f %13.2fx\n", lambda,
                base - ev.top1_penalty_pp, ev.mean_bitops / 1e6,
                bitops8 / ev.mean_bitops);
  }
  return 0;
}
