// Figure 6 — visualisation of the bitwidth assignment after VDQS for
// MobileNetV2 and MCUNet. "BxLy" is the paper's notation: the yth feature
// map on the xth dataflow branch. The paper observes that more than half
// the feature maps end up sub-byte, with low bitwidths at the start of a
// branch (large maps, computation-dominated) and 8-bit at the end
// (accuracy-dominated).
#include "bench_common.h"

namespace {

using namespace qmcu;

void run_model(const char* name) {
  const mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_model(name, cfg);
  const auto ds =
      bench::dataset_for(data::DatasetKind::ImageNetLike, cfg.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;  // 4 branches keeps the figure readable
  const core::QuantMcuPlan plan =
      core::build_quantmcu_plan(g, dev, calib, qcfg);

  std::printf("\n%s (grid %dx%d, cut at layer %d '%s')\n", name,
              plan.patch_plan.spec.grid_rows, plan.patch_plan.spec.grid_cols,
              plan.patch_plan.spec.split_layer,
              g.layer(plan.patch_plan.spec.split_layer).name.c_str());

  int total = 0;
  int subbyte = 0;
  for (std::size_t b = 0; b < plan.mixed_bits.size(); ++b) {
    std::printf("  B%zu:", b + 1);
    for (std::size_t s = 0; s < plan.mixed_bits[b].bits.size(); ++s) {
      const int bits = plan.mixed_bits[b].bits[s];
      std::printf(" L%zu=%d", s + 1, bits);
      ++total;
      subbyte += bits < 8 ? 1 : 0;
    }
    std::printf("\n");
  }
  std::printf("  tail:");
  for (int id = plan.patch_plan.spec.split_layer + 1; id < g.size(); ++id) {
    const int bits = plan.tail_bits[static_cast<std::size_t>(id)];
    std::printf(" %d", bits);
    ++total;
    subbyte += bits < 8 ? 1 : 0;
  }
  std::printf("\n  sub-byte feature maps: %d/%d (%.0f%%)\n", subbyte, total,
              100.0 * subbyte / total);
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Figure 6", "bitwidth assignment after quantization");
  std::printf("paper: >50%% of feature maps sub-byte; branch starts low-bit, "
              "branch ends mostly 8-bit\n");
  run_model("mobilenetv2");
  run_model("mcunet");
  return 0;
}
