// bench_common.h — shared setup for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// measured values next to the paper's reported ones where applicable.
// Workload scales follow the Table I caption ("the width multiplier and
// resolution of the model are adjusted to fit MCU memory"): the (width,
// resolution) pairs below were chosen so the 8-bit layer-based BitOPs land
// close to the paper's layer-based rows.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "mcu/cost_model.h"
#include "mcu/device.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"
#include "patch/mcunetv2.h"
#include "patch/patch_cost.h"

#if __has_include(<benchmark/benchmark.h>)
#include <benchmark/benchmark.h>
#define QMCU_HAVE_GOOGLE_BENCHMARK 1
#endif

namespace qmcu::bench {

#ifdef QMCU_HAVE_GOOGLE_BENCHMARK
// Runs google-benchmark with a machine-readable default report: unless the
// caller already passed --benchmark_out, results are mirrored to
// `default_json` (e.g. BENCH_micro_kernels.json) in the working directory,
// so every CI run leaves a parseable perf trajectory artifact.
inline int run_benchmarks_json(int argc, char** argv,
                               const std::string& default_json) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=" + default_json;
  std::string fmt_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
#endif

// Machine-readable artifact for the plain (non-google-benchmark) table and
// figure benches: collects named metrics and writes BENCH_<bench>.json in
// the working directory, so every bench run — local or CI — leaves a
// parseable perf-trajectory artifact next to the human-readable table.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : path_("BENCH_" + std::move(bench_name) + ".json") {}

  // `name` identifies one measured cell, e.g.
  // "table1/arduino_imagenet/quantmcu/peak_kb".
  void add(const std::string& name, double value, const std::string& unit) {
    entries_.push_back({name, value, unit});
  }

  // Writes the artifact (called explicitly so a crashed bench leaves no
  // half-written file).
  void write() const {
    std::ofstream os(path_);
    if (!os) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    os << "{\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      os << "    {\"name\": \"" << e.name << "\", \"value\": " << e.value
         << ", \"unit\": \"" << e.unit << "\"}"
         << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    std::printf("\nwrote %s (%zu metrics)\n", path_.c_str(), entries_.size());
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::string path_;
  std::vector<Entry> entries_;
};

// Arduino Nano 33 BLE Sense / ImageNet: paper row 1536 MBitOPs.
inline models::ModelConfig nano_imagenet_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 144;
  cfg.num_classes = 1000;
  return cfg;
}

// Arduino Nano 33 BLE Sense / VOC: paper row 2176 MBitOPs.
inline models::ModelConfig nano_voc_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 128;
  cfg.num_classes = 20;
  return cfg;
}

// STM32H743 / ImageNet: paper row 4057 MBitOPs.
inline models::ModelConfig h7_imagenet_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 176;
  cfg.num_classes = 1000;
  return cfg;
}

// STM32H743 / VOC: paper row 5842 MBitOPs.
inline models::ModelConfig h7_voc_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.75f;
  cfg.resolution = 160;
  cfg.num_classes = 20;
  return cfg;
}

inline data::SyntheticDataset dataset_for(data::DatasetKind kind,
                                          int resolution) {
  data::DataConfig dc;
  dc.kind = kind;
  dc.resolution = resolution;
  return data::SyntheticDataset(dc);
}

inline void print_title(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

}  // namespace qmcu::bench
