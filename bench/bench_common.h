// bench_common.h — shared setup for the table/figure reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper and prints
// measured values next to the paper's reported ones where applicable.
// Workload scales follow the Table I caption ("the width multiplier and
// resolution of the model are adjusted to fit MCU memory"): the (width,
// resolution) pairs below were chosen so the 8-bit layer-based BitOPs land
// close to the paper's layer-based rows.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "mcu/cost_model.h"
#include "mcu/device.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"
#include "patch/mcunetv2.h"
#include "patch/patch_cost.h"

namespace qmcu::bench {

// Arduino Nano 33 BLE Sense / ImageNet: paper row 1536 MBitOPs.
inline models::ModelConfig nano_imagenet_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 144;
  cfg.num_classes = 1000;
  return cfg;
}

// Arduino Nano 33 BLE Sense / VOC: paper row 2176 MBitOPs.
inline models::ModelConfig nano_voc_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 128;
  cfg.num_classes = 20;
  return cfg;
}

// STM32H743 / ImageNet: paper row 4057 MBitOPs.
inline models::ModelConfig h7_imagenet_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 176;
  cfg.num_classes = 1000;
  return cfg;
}

// STM32H743 / VOC: paper row 5842 MBitOPs.
inline models::ModelConfig h7_voc_scale() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.75f;
  cfg.resolution = 160;
  cfg.num_classes = 20;
  return cfg;
}

inline data::SyntheticDataset dataset_for(data::DatasetKind kind,
                                          int resolution) {
  data::DataConfig dc;
  dc.kind = kind;
  dc.resolution = resolution;
  return data::SyntheticDataset(dc);
}

inline void print_title(const char* artifact, const char* description) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", artifact, description);
  std::printf("================================================================\n");
}

}  // namespace qmcu::bench
