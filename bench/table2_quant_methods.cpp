// Table II — comparison of quantization methods on MobileNetV2:
// W/A bitwidths, Top-1, BitOPs, peak activation memory, and the measured
// wall-clock of each method's search ("Time"). The search mechanisms are
// real implementations (PACT clip learning, Rusci memory cascade with
// validation inference, HAQ RL episodes with measured rewards, HAWQ
// perturbation sensitivity) — see src/baselines/.
#include "bench_common.h"

#include "baselines/haq.h"
#include "baselines/hawq.h"
#include "baselines/pact.h"
#include "baselines/rusci.h"

namespace {

using namespace qmcu;

void print_row(const char* method, const char* wa, double top1,
               double bitops_g, double mem_kb, double seconds) {
  std::printf("  %-14s %7s %8.1f%% %9.2fG %9.0fkB %9.2fs\n", method, wa,
              top1, bitops_g, mem_kb, seconds);
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Table II", "quantization method comparison");
  std::printf(
      "paper (MobileNetV2 w1.0 @ 224): baseline 8/8 71.9%% 19.2G 1372kB; "
      "Pact 4/4 61.4%% 7.42G 692kB 45min;\n  Rusci MP 61.8%% 7.42G 690kB "
      "33min; HAQ MP 68.5%% 42.8G 950kB 90min; HAWQ-V3 MP 63.4%% 13.6G "
      "787kB 30min;\n  QuantMCU 8/MP 69.2%% 10.9G 523kB 0.5min\n");

  // Scaled workload (search mechanisms are super-linear in model cost; the
  // relative Time ordering is what the table demonstrates).
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.5f;
  cfg.resolution = 144;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  std::printf("\nworkload: MobileNetV2 w%.2f @ %d (%.0f MMACs)\n",
              cfg.width_multiplier, cfg.resolution,
              static_cast<double>(g.total_macs()) / 1e6);

  const auto ds = bench::dataset_for(data::DatasetKind::ImageNetLike,
                                     cfg.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const std::vector<nn::Tensor> eval = ds.batch(8, 2);

  std::printf("  %-14s %7s %9s %10s %10s %10s\n", "method", "W/A", "Top-1",
              "BitOPs", "Memory", "Time");

  // --- baseline 8/8 ---------------------------------------------------------
  {
    baselines::MethodResult r;
    r.name = "Baseline";
    r.wa_bits = "8/8";
    r.act_bits = nn::uniform_bits(g, 8);
    r.weight_bits = nn::uniform_bits(g, 8);
    r.search_seconds = 0.0;
    const auto m = baselines::evaluate_method(g, r, eval, "mobilenetv2");
    print_row("Baseline", "8/8", m.top1,
              static_cast<double>(m.bitops) / 1e9,
              static_cast<double>(m.peak_bytes) / 1024, 0.0);
  }

  const auto report = [&](const baselines::MethodResult& r) {
    const auto m = baselines::evaluate_method(g, r, eval, "mobilenetv2");
    print_row(r.name.c_str(), r.wa_bits.c_str(), m.top1,
              static_cast<double>(m.bitops) / 1e9,
              static_cast<double>(m.peak_bytes) / 1024, r.search_seconds);
  };

  report(baselines::run_pact(g, calib));

  {
    // Rusci et al. is *memory-driven*: budgets come from the target device
    // (Nano 33 class), not from the model — that is the method's point and
    // its accuracy weakness (the large input maps get crushed to fit).
    const mcu::Device nano = mcu::arduino_nano_33_ble_sense();
    baselines::RusciConfig rc;
    rc.sram_budget = nano.sram_bytes / 3;  // tensor-arena share of SRAM
    rc.flash_budget = nano.flash_bytes;
    rc.validation_passes = 1;
    report(baselines::run_rusci(g, calib, rc));
  }

  {
    baselines::HaqConfig hc;
    hc.episodes = 32;
    report(baselines::run_haq(g, calib, hc));
  }

  report(baselines::run_hawq(g, calib));

  // --- QuantMCU (8-bit weights, mixed activations, patch-based) -------------
  {
    const mcu::Device dev = mcu::arduino_nano_33_ble_sense();
    const mcu::CostModel cm(dev);
    core::QuantMcuConfig qcfg;
    qcfg.patch.grid = 3;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, eval, qcfg);
    const double top1 =
        core::base_accuracy("mobilenetv2").imagenet_top1 - ev.top1_penalty_pp;
    print_row("QuantMCU", "8/MP", top1, ev.mean_bitops / 1e9,
              ev.mean_peak_bytes / 1024, plan.search_seconds);
  }
  return 0;
}
