// Figure 4 — accuracy of MCUNetV2 (8-bit patch inference), "QuantMCU w/o
// VDPC" (VDQS applied blindly to every patch) and full QuantMCU, on five
// networks and both datasets. The paper's signature: w/o VDPC loses 10-15
// points vs MCUNetV2; full QuantMCU stays within ~1 point.
#include "bench_common.h"

namespace {

using namespace qmcu;

void run_dataset(data::DatasetKind kind) {
  const mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(dev);
  const char* metric =
      kind == data::DatasetKind::ImageNetLike ? "Top-1" : "mAP";
  std::printf("\n%s (%s)\n", data::dataset_name(kind), metric);
  std::printf("  %-14s %10s %14s %10s\n", "network", "MCUNetV2", "w/o VDPC",
              "QuantMCU");

  const std::vector<std::string> nets{"mobilenetv2", "inceptionv3",
                                      "squeezenet", "resnet18", "vgg16"};
  for (const std::string& name : nets) {
    models::ModelConfig cfg;
    cfg.width_multiplier = 0.25f;
    cfg.resolution = 64;
    cfg.num_classes = kind == data::DatasetKind::ImageNetLike ? 100 : 20;
    const nn::Graph g = models::make_model(name, cfg);

    const auto ds = bench::dataset_for(kind, cfg.resolution);
    const std::vector<nn::Tensor> calib = ds.batch(0, 2);
    const std::vector<nn::Tensor> eval = ds.batch(8, 2);

    core::QuantMcuConfig qcfg;
    qcfg.patch.grid = 3;
    const core::QuantMcuPlan plan =
        core::build_quantmcu_plan(g, dev, calib, qcfg);
    core::QuantMcuConfig blind = qcfg;
    blind.enable_vdpc = false;

    const core::AccuracyModel acc;
    const core::AccuracyBase base = core::base_accuracy(name);
    const double base_val = kind == data::DatasetKind::ImageNetLike
                                ? base.imagenet_top1
                                : base.voc_map;
    const auto penalty = [&](const core::QuantMcuEvaluation& ev) {
      return kind == data::DatasetKind::ImageNetLike ? ev.top1_penalty_pp
                                                     : ev.map_penalty_pp;
    };

    const core::QuantMcuEvaluation mcunet =
        core::evaluate_uniform_patch(g, plan.patch_plan, cm, eval, acc);
    const core::QuantMcuEvaluation without =
        core::evaluate_quantmcu(g, plan, cm, eval, blind, acc);
    const core::QuantMcuEvaluation full =
        core::evaluate_quantmcu(g, plan, cm, eval, qcfg, acc);

    std::printf("  %-14s %9.1f%% %13.1f%% %9.1f%%\n", name.c_str(),
                base_val - penalty(mcunet), base_val - penalty(without),
                base_val - penalty(full));
  }
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Figure 4",
                     "accuracy ablation of VDPC (MCUNetV2 vs QuantMCU w/o "
                     "VDPC vs QuantMCU)");
  std::printf("paper: w/o VDPC loses 10-15 points vs MCUNetV2; full "
              "QuantMCU stays within ~1 point\n");
  run_dataset(data::DatasetKind::ImageNetLike);
  run_dataset(data::DatasetKind::PascalVocLike);
  return 0;
}
