// serving_throughput — open-loop serving benchmark for the core-budgeted
// front-end (nn/serving/serving_frontend.h).
//
// Measures, on one host, with a patch-based quant model at a small MCU
// scale:
//
//   1. Calibration: sequential single-run latency (the machine-speed
//      anchor bench_guard.py scales cross-host comparisons with).
//   2. Closed-loop saturation throughput for {1, 2, 4} sessions — enough
//      submitters to keep every lane busy, no think time.
//   3. Open-loop Poisson arrivals (deterministic SplitMix64 stream) at
//      offered loads {0.5, 0.9, 1.5} x the measured capacity of that
//      session count: sustained req/s, p50/p99 queue-to-completion
//      latency, and the shed rate (rejected + expired over offered). The
//      1.5x row exercises the bounded queue and per-request deadlines on
//      purpose: sheds there are the admission control working, not noise.
//   4. Budgeted-vs-naive: the same total core count either partitioned by
//      CoreBudget (pinned, sessions x workers <= cores) or stacked
//      naively (every lane gets a full-width unpinned WorkerPool, S x C
//      threads on C cores). Reports the throughput ratio;
//      --require-speedup X turns it into a hard gate on hosts with >= 4
//      cores (the acceptance criterion CI enforces; on smaller hosts both
//      configs degenerate to the same thread count and the gate is
//      meaningless).
//
// Also spot-checks bit-exactness: every serving configuration must return
// results identical to the lone sequential model (the PR-3/4 contract);
// a mismatch aborts the bench.
//
// Writes BENCH_serving.json (JsonReport format). Entry names are
// host-independent so bench_guard.py can diff runs across machines.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "nn/rng.h"
#include "nn/runtime/cpu_affinity.h"
#include "nn/serving/serving_frontend.h"
#include "patch/compiled_patch_model.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

using Clock = std::chrono::steady_clock;
using Frontend = nn::serving::ServingFrontend<patch::CompiledPatchQuantModel>;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// One compiled-model recipe shared by every frontend in the sweep: the
// graph, quant config and prepacked weights are built once, each session
// only pays its own compile.
struct ModelRecipe {
  nn::Graph graph;
  nn::ActivationQuantConfig cfg;
  std::shared_ptr<const nn::QuantizedParameters> params;
  patch::PatchPlan plan;

  static ModelRecipe build() {
    models::ModelConfig mc;
    mc.width_multiplier = 0.35f;
    mc.resolution = 64;
    mc.num_classes = 10;
    nn::Graph g = models::make_model("mobilenetv2", mc);
    nn::Tensor calib(g.shape(0));
    nn::Rng rng(1);
    for (float& v : calib.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
    const auto ranges =
        quant::calibrate_ranges(g, std::vector<nn::Tensor>{calib});
    auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
    auto params = nn::QuantizedParameters::build_shared(g, qcfg);
    auto plan = patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
    return ModelRecipe{std::move(g), std::move(qcfg), std::move(params),
                       std::move(plan)};
  }

  [[nodiscard]] std::unique_ptr<patch::CompiledPatchQuantModel> make(
      const std::shared_ptr<nn::ArenaSlab>& slab) const {
    auto model = std::make_unique<patch::CompiledPatchQuantModel>(
        graph, plan, cfg, std::vector<patch::BranchQuantConfig>{},
        nn::ops::KernelTier::Simd, params);
    model->set_arena_source(slab);
    return model;
  }

  [[nodiscard]] nn::Tensor input(std::uint64_t seed) const {
    nn::Tensor t(graph.shape(0));
    nn::Rng rng(seed);
    for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
    return t;
  }
};

Frontend make_frontend(const ModelRecipe& recipe, nn::serving::ServingConfig
                           cfg) {
  return Frontend(cfg,
                  [&recipe](int, const std::shared_ptr<nn::ArenaSlab>& slab) {
                    return recipe.make(slab);
                  });
}

// Any serving configuration must reproduce the sequential model bit for
// bit; a mismatch is a correctness bug, not a perf result.
void check_bit_exact(Frontend& frontend, const ModelRecipe& recipe,
                     const nn::QTensor& expected, const nn::Tensor& input) {
  const nn::QTensor got = frontend.run(input);
  if (!(got.shape() == expected.shape()) ||
      !std::equal(got.data().begin(), got.data().end(),
                  expected.data().begin())) {
    std::fprintf(stderr,
                 "FATAL: serving result differs from sequential run "
                 "(sessions=%d workers=%d)\n",
                 frontend.budget().sessions,
                 frontend.budget().workers_per_session);
    std::exit(1);
  }
  (void)recipe;
}

// Closed loop: 2 submitters per lane, no think time — measures the
// saturation throughput of one configuration.
double closed_loop_req_per_s(Frontend& frontend, const ModelRecipe& recipe,
                             int requests_per_submitter) {
  const int submitters = 2 * frontend.num_sessions();
  const nn::Tensor input = recipe.input(3);
  // Warmup: every lane compiles nothing but touches its arenas/caches.
  for (int i = 0; i < 2 * frontend.num_sessions(); ++i) {
    (void)frontend.run(input);
  }
  const Clock::time_point t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(submitters));
  for (int t = 0; t < submitters; ++t) {
    threads.emplace_back([&frontend, &input, requests_per_submitter] {
      for (int i = 0; i < requests_per_submitter; ++i) {
        (void)frontend.run(input);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = seconds_since(t0);
  return static_cast<double>(submitters) *
         static_cast<double>(requests_per_submitter) / secs;
}

struct OpenLoopRow {
  double req_per_s = 0;   // completed throughput
  double p50_ms = 0;      // queue-to-completion latency
  double p99_ms = 0;
  double shed_rate = 0;   // (rejected + expired) / offered
};

// Open loop: Poisson arrivals at `offered_rate` req/s from a deterministic
// stream, every request under `deadline`; arrivals never wait for
// completions (the queue, not the submitter, absorbs overload).
OpenLoopRow open_loop(Frontend& frontend, const ModelRecipe& recipe,
                      double offered_rate, int arrivals,
                      std::chrono::microseconds deadline) {
  const nn::Tensor input = recipe.input(4);
  for (int i = 0; i < 2 * frontend.num_sessions(); ++i) {
    (void)frontend.run(input);
  }
  frontend.enable_latency_recording();
  (void)frontend.take_latencies_ms();
  const auto base = frontend.stats();

  nn::Rng rng(42);
  std::vector<std::future<nn::QTensor>> futures;
  futures.reserve(static_cast<std::size_t>(arrivals));
  const Clock::time_point t0 = Clock::now();
  double arrival_s = 0.0;
  for (int i = 0; i < arrivals; ++i) {
    // Exponential inter-arrival times: -ln(U)/rate, U in (0,1].
    double u = 1.0 - rng.uniform();
    arrival_s += -std::log(u) / offered_rate;
    const auto at = t0 + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(arrival_s));
    std::this_thread::sleep_until(at);
    futures.push_back(
        frontend.submit(input, Frontend::Clock::now() +
                                   std::chrono::duration_cast<
                                       Frontend::Clock::duration>(deadline)));
  }
  for (auto& f : futures) {
    try {
      (void)f.get();
    } catch (const std::exception&) {
      // Rejected or expired: accounted below via stats.
    }
  }
  const double secs = seconds_since(t0);

  const auto stats = frontend.stats();
  OpenLoopRow row;
  const double completed =
      static_cast<double>(stats.completed - base.completed);
  const double shed = static_cast<double>((stats.rejected - base.rejected) +
                                          (stats.expired - base.expired));
  row.req_per_s = completed / secs;
  row.shed_rate = shed / static_cast<double>(arrivals);
  std::vector<double> lat = frontend.take_latencies_ms();
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    row.p50_ms = lat[lat.size() / 2];
    row.p99_ms = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  return row;
}

int run(int argc, char** argv) {
  double require_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-speedup") == 0 && i + 1 < argc) {
      require_speedup = std::atof(argv[++i]);
    }
  }

  const int cores = nn::runtime::usable_cpus();
  bench::print_title("serving_throughput",
                     "core-budgeted serving front-end, open-loop harness");
  std::printf("host: %d usable core(s), affinity %s\n", cores,
              nn::runtime::affinity_supported() ? "supported" : "unsupported");

  bench::JsonReport report("serving");
  report.add("serving/host_cores", cores, "cores");

  const ModelRecipe recipe = ModelRecipe::build();

  // --- calibration: sequential single-run latency --------------------------
  const auto slab = std::make_shared<nn::ArenaSlab>();
  const auto reference = recipe.make(slab);
  const nn::Tensor ref_input = recipe.input(2);
  const nn::QTensor expected = reference->run(ref_input);
  (void)reference->run(ref_input);  // warm
  constexpr int kCalibRuns = 20;
  const Clock::time_point c0 = Clock::now();
  for (int i = 0; i < kCalibRuns; ++i) (void)reference->run(ref_input);
  const double single_ms = seconds_since(c0) * 1e3 / kCalibRuns;
  report.add("serving/calibration/RefSingleRun", single_ms, "ms");
  std::printf("\nsequential single run: %.3f ms (%.1f req/s ceiling/core)\n",
              single_ms, 1e3 / single_ms);

  // --- closed-loop saturation sweep ----------------------------------------
  std::printf("\nclosed-loop saturation (2 submitters/lane, no think time)\n");
  std::printf("  %-10s %12s\n", "sessions", "req/s");
  double capacity_s1 = 0.0;
  for (const int sessions : {1, 2, 4}) {
    nn::serving::ServingConfig cfg;
    cfg.sessions = sessions;
    cfg.max_queue_depth = 0;  // closed loop self-limits, no shedding
    Frontend frontend = make_frontend(recipe, cfg);
    check_bit_exact(frontend, recipe, expected, ref_input);
    const double rps = closed_loop_req_per_s(frontend, recipe, 24);
    if (sessions == 1) capacity_s1 = rps;
    char name[64];
    std::snprintf(name, sizeof(name), "serving/closed/s%d/req_per_s",
                  sessions);
    report.add(name, rps, "req/s");
    std::printf("  %-10d %12.1f\n", sessions, rps);
  }

  // --- open-loop Poisson sweep ---------------------------------------------
  // Offered rates are relative to this host's measured single-session
  // capacity, so the sweep exercises the same queueing regimes (half
  // loaded / near saturation / overloaded) on any machine, and the entry
  // names stay host-independent for bench_guard.
  std::printf("\nopen-loop Poisson arrivals (deadline 80x single-run)\n");
  std::printf("  %-10s %-8s %12s %10s %10s %10s\n", "sessions", "load",
              "req/s", "p50 ms", "p99 ms", "shed");
  const auto deadline = std::chrono::microseconds(
      static_cast<std::int64_t>(80.0 * single_ms * 1e3));
  for (const int sessions : {1, 2, 4}) {
    for (const double load : {0.5, 0.9, 1.5}) {
      nn::serving::ServingConfig cfg;
      cfg.sessions = sessions;
      // Bounded queue: 4 entries per lane. The 1.5x row overflows it by
      // design — that is the load-shedding path under test.
      cfg.max_queue_depth = static_cast<std::size_t>(4 * sessions);
      Frontend frontend = make_frontend(recipe, cfg);
      check_bit_exact(frontend, recipe, expected, ref_input);
      const double offered = load * capacity_s1 * sessions;
      const OpenLoopRow row =
          open_loop(frontend, recipe, offered, 240, deadline);
      char name[96];
      const int load_pct = static_cast<int>(load * 100 + 0.5);
      std::snprintf(name, sizeof(name),
                    "serving/open/s%d/load%03d/req_per_s", sessions,
                    load_pct);
      report.add(name, row.req_per_s, "req/s");
      std::snprintf(name, sizeof(name), "serving/open/s%d/load%03d/p50_ms",
                    sessions, load_pct);
      report.add(name, row.p50_ms, "ms");
      std::snprintf(name, sizeof(name), "serving/open/s%d/load%03d/p99_ms",
                    sessions, load_pct);
      report.add(name, row.p99_ms, "ms");
      std::snprintf(name, sizeof(name),
                    "serving/open/s%d/load%03d/shed_rate", sessions,
                    load_pct);
      report.add(name, row.shed_rate, "frac");
      std::printf("  %-10d %-8.1f %12.1f %10.2f %10.2f %9.1f%%\n", sessions,
                  load, row.req_per_s, row.p50_ms, row.p99_ms,
                  row.shed_rate * 100.0);
    }
  }

  // --- budgeted vs naive ---------------------------------------------------
  // Equal total cores; the only variable is coordination. Naive: every
  // lane runs a full-width unpinned WorkerPool (S x C threads on C
  // cores — what stacking the two parallelism layers without a budget
  // does). Budgeted: CoreBudget partition + pinned lanes.
  const int comp_sessions = std::min(4, std::max(2, cores));
  nn::serving::ServingConfig naive_cfg;
  naive_cfg.sessions = comp_sessions;
  naive_cfg.core_budget = comp_sessions * cores;  // full width per lane
  naive_cfg.pin_lanes = false;
  naive_cfg.max_queue_depth = 0;
  nn::serving::ServingConfig budget_cfg;
  budget_cfg.sessions = comp_sessions;
  budget_cfg.core_budget = cores;
  budget_cfg.pin_lanes = true;
  budget_cfg.max_queue_depth = 0;
  double naive_rps = 0.0;
  double budget_rps = 0.0;
  {
    Frontend naive = make_frontend(recipe, naive_cfg);
    check_bit_exact(naive, recipe, expected, ref_input);
    naive_rps = closed_loop_req_per_s(naive, recipe, 24);
  }
  {
    Frontend budgeted = make_frontend(recipe, budget_cfg);
    check_bit_exact(budgeted, recipe, expected, ref_input);
    budget_rps = closed_loop_req_per_s(budgeted, recipe, 24);
  }
  const double speedup = budget_rps / naive_rps;
  report.add("serving/budgeted_vs_naive/naive_req_per_s", naive_rps, "req/s");
  report.add("serving/budgeted_vs_naive/budgeted_req_per_s", budget_rps,
             "req/s");
  report.add("serving/budgeted_vs_naive/speedup", speedup, "x");
  std::printf(
      "\nbudgeted vs naive (%d sessions, %d cores total):\n"
      "  naive    (S x C threads, unpinned): %10.1f req/s\n"
      "  budgeted (S x W <= C, pinned):      %10.1f req/s\n"
      "  speedup: %.2fx\n",
      comp_sessions, cores, naive_rps, budget_rps, speedup);

  report.write();

  if (require_speedup > 0.0) {
    if (cores < 4) {
      std::printf(
          "--require-speedup %.2f skipped: %d core(s) — budgeted and naive "
          "degenerate to the same configuration on this host\n",
          require_speedup, cores);
    } else if (speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: budgeted/naive speedup %.2fx below required "
                   "%.2fx\n",
                   speedup, require_speedup);
      return 1;
    } else {
      std::printf("speedup gate passed: %.2fx >= %.2fx\n", speedup,
                  require_speedup);
    }
  }
  return 0;
}

}  // namespace
}  // namespace qmcu

int main(int argc, char** argv) { return qmcu::run(argc, argv); }
