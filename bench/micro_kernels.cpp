// Micro-benchmarks (google-benchmark) for the hot primitives: float/int8
// convolution kernels (Reference vs Fast tier), sub-byte packing, entropy
// estimation, the VDQS search itself, and patch-plan construction. These
// bound the cost of the host-side tooling (the paper's Table II "Time"
// column is dominated by entropy profiling + vdqs_search) and track the
// kernel-backend perf trajectory; results land in BENCH_micro_kernels.json
// by default (see bench_common.h).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>

#include "bench/bench_common.h"
#include "core/vdqs.h"
#include "models/zoo.h"
#include "nn/ops/backend.h"
#include "nn/ops/float_kernels.h"
#include "nn/ops/gemm_int8.h"
#include "nn/ops/int8_kernels.h"
#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/simd/cpu_features.h"
#include "nn/ops/simd/simd_kernels.h"
#include "nn/rng.h"
#include "nn/runtime/session_pool.h"
#include "nn/runtime/worker_pool.h"
#include "patch/mcunetv2.h"
#include "patch/patch_plan.h"
#include "quant/bitpack.h"
#include "quant/entropy.h"

namespace {

using namespace qmcu;

nn::Tensor random_tensor(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

nn::Layer conv_layer(int out_c, int k, int s, int p) {
  nn::Layer l;
  l.kind = nn::OpKind::Conv2D;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  l.out_channels = out_c;
  l.act = nn::Activation::ReLU6;
  return l;
}

void BM_Conv2dF32(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const nn::Tensor in = random_tensor({32, 32, c}, 1);
  const nn::Layer l = conv_layer(c, 3, 1, 1);
  std::vector<float> w(static_cast<std::size_t>(c * 3 * 3 * c));
  nn::Rng rng(2);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::ops::conv2d_f32(in, l, w, {}));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
}
BENCHMARK(BM_Conv2dF32)->Arg(8)->Arg(16)->Arg(32);

struct QuantConvSetup {
  nn::Layer l;
  nn::QTensor qin;
  nn::ops::QuantizedWeights qw;
  nn::QuantParams out_p;
};

QuantConvSetup quant_conv_setup(int c) {
  const nn::Tensor in = random_tensor({32, 32, c}, 3);
  QuantConvSetup s;
  s.l = conv_layer(c, 3, 1, 1);
  std::vector<float> w(static_cast<std::size_t>(c * 3 * 3 * c));
  nn::Rng rng(4);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.1));
  const auto [lo, hi] = nn::tensor_min_max(in);
  s.qin = nn::quantize(in, nn::choose_quant_params(lo, hi, 8));
  s.qw = nn::ops::quantize_weights(w);
  s.out_p = nn::choose_quant_params(-4.0f, 4.0f, 8);
  return s;
}

// The deployed path: Fast tier (im2col + tiled GEMM) through the backend.
void BM_Conv2dInt8(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const QuantConvSetup s = quant_conv_setup(c);
  nn::ops::KernelBackend backend(nn::ops::KernelTier::Fast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.conv2d(s.qin, s.l, s.qw.data, s.qw.params, {}, s.out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
}
BENCHMARK(BM_Conv2dInt8)->Arg(8)->Arg(16)->Arg(32);

// The Simd tier (runtime-dispatched AVX2/NEON microkernels). On hosts
// without a usable ISA this measures the scalar fallback; the
// `simd_active` counter records which one ran, and tools/bench_guard.py
// skips Simd entries when it is 0.
void BM_Conv2dInt8Simd(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const QuantConvSetup s = quant_conv_setup(c);
  nn::ops::KernelBackend backend(nn::ops::KernelTier::Simd);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.conv2d(s.qin, s.l, s.qw.data, s.qw.params, {}, s.out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
  state.counters["simd_active"] = nn::ops::simd::available() ? 1 : 0;
}
BENCHMARK(BM_Conv2dInt8Simd)->Arg(8)->Arg(16)->Arg(32);

// One row per tier over the same conv (c = 32): the tier speedup table the
// README quotes. Arg 0 = row: 0 Reference, 1 Fast, 2 Simd pinned to the
// pair-madd generation (QMCU_FORCE_NO_DOT wraps backend construction, where
// the kernel table is snapshotted), 3 Simd default dispatch — the
// dot-product generation (AVX-VNNI / NEON sdot) where the host has one,
// identical to row 2 elsewhere. `dot_active` records whether row 3 really
// ran a dot table, so tools/bench_guard.py can skip it on pair-madd hosts.
void BM_GemmTierSweep(benchmark::State& state) {
  const int row = static_cast<int>(state.range(0));
  const auto tier = row == 0   ? nn::ops::KernelTier::Reference
                    : row == 1 ? nn::ops::KernelTier::Fast
                               : nn::ops::KernelTier::Simd;
  const QuantConvSetup s = quant_conv_setup(32);
  if (row == 2) ::setenv("QMCU_FORCE_NO_DOT", "1", 1);
  nn::ops::KernelBackend backend(tier);
  if (row == 2) ::unsetenv("QMCU_FORCE_NO_DOT");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.conv2d(s.qin, s.l, s.qw.data, s.qw.params, {}, s.out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * 32 * 9 * 32);
  state.counters["tier"] = static_cast<double>(row);
  state.counters["simd_active"] =
      tier == nn::ops::KernelTier::Simd && nn::ops::simd::available() ? 1 : 0;
  state.counters["dot_active"] =
      row == 3 && nn::ops::simd::dot_available() ? 1 : 0;
}
BENCHMARK(BM_GemmTierSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// The fully-connected microkernel sweep (m == 1 panel GEMM): same tier rows
// as BM_GemmTierSweep over k ∈ {64, 256, 1024} input features (arg 1) at 64
// output channels. Row 0 is the reference per-output dot product — the old
// scalar row loop's arithmetic — so row 2/3 vs row 0 is the fc microkernel
// acceptance ratio.
void BM_FcTierSweep(benchmark::State& state) {
  const int row = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  constexpr int kOut = 64;
  nn::Layer l;
  l.kind = nn::OpKind::FullyConnected;
  l.out_channels = kOut;
  l.act = nn::Activation::None;
  nn::Rng rng(14);
  const nn::QuantParams in_p{0.04f, 3, 8};
  const nn::QuantParams out_p{0.1f, -2, 8};
  const nn::QuantParams wp{0.015f, 0, 8};
  nn::QTensor qin(nn::TensorShape{1, 1, k}, in_p);
  for (std::int8_t& v : qin.data()) {
    v = static_cast<std::int8_t>(rng.uniform(-128, 128));
  }
  std::vector<std::int8_t> w(static_cast<std::size_t>(k) * kOut);
  for (std::int8_t& v : w) {
    v = static_cast<std::int8_t>(rng.uniform(-128, 128));
  }
  std::vector<std::int32_t> bias(kOut);
  for (std::int32_t& b : bias) {
    b = static_cast<std::int32_t>(rng.uniform(-3000, 3000));
  }
  const auto tier = row == 0   ? nn::ops::KernelTier::Reference
                    : row == 1 ? nn::ops::KernelTier::Fast
                               : nn::ops::KernelTier::Simd;
  if (row == 2) ::setenv("QMCU_FORCE_NO_DOT", "1", 1);
  nn::ops::KernelBackend backend(tier);
  if (row == 2) ::unsetenv("QMCU_FORCE_NO_DOT");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.fully_connected(qin, l, w, wp, bias, out_p));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(k) * kOut);
  state.counters["tier"] = static_cast<double>(row);
  state.counters["k"] = static_cast<double>(k);
  state.counters["simd_active"] =
      tier == nn::ops::KernelTier::Simd && nn::ops::simd::available() ? 1 : 0;
  state.counters["dot_active"] =
      row == 3 && nn::ops::simd::dot_available() ? 1 : 0;
}
BENCHMARK(BM_FcTierSweep)
    ->Args({0, 64})
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({3, 64})
    ->Args({0, 256})
    ->Args({1, 256})
    ->Args({2, 256})
    ->Args({3, 256})
    ->Args({0, 1024})
    ->Args({1, 1024})
    ->Args({2, 1024})
    ->Args({3, 1024});

// The seed's reference loop nest, kept as the comparison baseline.
void BM_Conv2dInt8Ref(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const QuantConvSetup s = quant_conv_setup(c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::ops::conv2d_q(s.qin, s.l, s.qw.data, s.qw.params, {}, s.out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
}
BENCHMARK(BM_Conv2dInt8Ref)->Arg(8)->Arg(16)->Arg(32);

// Fused sub-byte path: 4-bit packed activations expanded inside im2col.
void BM_Conv2dInt8Packed4(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  QuantConvSetup s = quant_conv_setup(c);
  // Re-quantize the input to 4 bits and pack it.
  nn::QuantParams p4 = s.qin.params();
  p4.bits = 4;
  const nn::QTensor q4 = nn::quantize(nn::dequantize(s.qin), p4);
  const std::vector<std::uint8_t> packed = quant::pack(q4.data(), 4);
  nn::ops::KernelBackend backend(nn::ops::KernelTier::Fast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.conv2d_packed(packed, q4.shape(), q4.params(), s.l, s.qw.data,
                              s.qw.params, {}, s.out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
}
BENCHMARK(BM_Conv2dInt8Packed4)->Arg(8)->Arg(16)->Arg(32);

// Packed sub-byte conv across all four ways to compute it, same conv
// (c = 32, 3x3, 32x32 input): arg 0 = activation bits (2/4), arg 1 = tier
// row — 0 Reference, 1 Fast, 2 Simd (both pinned to the unpack + GEMM path
// via QMCU_NO_LUT), 3 LUT (Simd backend with QMCU_FORCE_LUT). The README's
// packed-conv tier table and the LUT acceptance criterion (4-bit LUT >=
// int8 Simd, 2-bit LUT ~ 2x) come from this family. `simd_active` reports
// whether the row's vector body (GEMM or LUT) actually ran, so
// tools/bench_guard.py can skip vector rows on scalar hosts.
void BM_PackedConvTierSweep(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const int row = static_cast<int>(state.range(1));
  constexpr int kC = 32;
  const nn::Tensor in = random_tensor({32, 32, kC}, 3);
  const nn::Layer l = conv_layer(kC, 3, 1, 1);
  std::vector<float> w(static_cast<std::size_t>(kC * 3 * 3 * kC));
  nn::Rng rng(4);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.1));
  const nn::ops::QuantizedWeights qw = nn::ops::quantize_weights(w);
  const nn::QuantParams out_p = nn::choose_quant_params(-4.0f, 4.0f, 8);
  // Sub-byte params chosen at `bits` so the zero point is representable —
  // the LUT eligibility precondition.
  const auto [lo, hi] = nn::tensor_min_max(in);
  const nn::QTensor q = nn::quantize(in, nn::choose_quant_params(lo, hi, bits));
  const std::vector<std::uint8_t> packed = quant::pack(q.data(), bits);

  const bool lut_row = row == 3;
  ::setenv(lut_row ? "QMCU_FORCE_LUT" : "QMCU_NO_LUT", "1", 1);
  const auto tier = row == 0   ? nn::ops::KernelTier::Reference
                    : row == 1 ? nn::ops::KernelTier::Fast
                               : nn::ops::KernelTier::Simd;
  nn::ops::KernelBackend backend(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.conv2d_packed(packed, q.shape(), q.params(), l, qw.data,
                              qw.params, {}, out_p));
  }
  ::unsetenv(lut_row ? "QMCU_FORCE_LUT" : "QMCU_NO_LUT");
  state.SetItemsProcessed(state.iterations() * 32 * 32 * kC * 9 * kC);
  state.counters["bits"] = bits;
  state.counters["tier"] = row;
  const nn::ops::simd::SimdKernels* table = nn::ops::simd::kernels();
  state.counters["simd_active"] =
      lut_row ? (table != nullptr && table->lut_gemm_block != nullptr ? 1 : 0)
              : (row == 2 && nn::ops::simd::available() ? 1 : 0);
}
BENCHMARK(BM_PackedConvTierSweep)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 3});

// The LUT-GEMM primitive itself (table build amortized away): m x n x k
// tile through lut_gemm_requant — index tiles, table lookups, chunked
// int16 sums, fused requantize. Arg 0 = activation bits.
void BM_LutGemm(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  constexpr int kM = 1024, kN = 32, kK = 288;
  nn::Rng rng(6);
  std::vector<std::int8_t> a(static_cast<std::size_t>(kM) * kK);
  const int lo = -(1 << (bits - 1));
  const int hi = (1 << (bits - 1)) - 1;
  for (auto& v : a) v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
  std::vector<std::int8_t> w(static_cast<std::size_t>(kN) * kK);
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform(-128, 128));
  std::vector<std::int8_t> tables(
      static_cast<std::size_t>(nn::ops::lut::lut_table_bytes(kN, kK, bits)));
  nn::ops::lut::pack_weights_lut(w, kN, kK, bits, tables.data());
  const int groups = nn::ops::lut::lut_groups(kK, bits);
  std::vector<std::uint8_t> idx(static_cast<std::size_t>(groups) *
                                nn::ops::lut::kLutTileM);
  std::vector<std::int32_t> acc(
      static_cast<std::size_t>(nn::ops::lut::kLutTileM) * kN);
  std::vector<std::int8_t> out(static_cast<std::size_t>(kM) * kN);
  nn::ops::GemmQuantPost post;
  post.multiplier = nn::ops::quantize_multiplier(0.02);
  const nn::ops::simd::SimdKernels* table = nn::ops::simd::kernels();
  for (auto _ : state) {
    nn::ops::lut::lut_gemm_requant(a.data(), tables.data(), kM, kN, kK, bits,
                                   post, idx.data(), acc.data(), out.data(),
                                   table);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kM) *
                          kN * kK);
  state.counters["bits"] = bits;
  state.counters["simd_active"] =
      table != nullptr && table->lut_gemm_block != nullptr ? 1 : 0;
}
BENCHMARK(BM_LutGemm)->Arg(4)->Arg(2);

// Arg 1 selects the tier: 0 = Reference, 1 = Fast, 2 = Simd.
void BM_DepthwiseInt8(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const auto tier = static_cast<nn::ops::KernelTier>(state.range(1));
  const nn::Tensor in = random_tensor({32, 32, c}, 8);
  nn::Layer l;
  l.kind = nn::OpKind::DepthwiseConv2D;
  l.kernel_h = l.kernel_w = 3;
  l.stride_h = l.stride_w = 1;
  l.pad_h = l.pad_w = 1;
  l.act = nn::Activation::ReLU6;
  std::vector<float> w(static_cast<std::size_t>(3 * 3 * c));
  nn::Rng rng(9);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.1));
  const auto [lo, hi] = nn::tensor_min_max(in);
  const nn::QTensor qin = nn::quantize(in, nn::choose_quant_params(lo, hi, 8));
  const nn::ops::QuantizedWeights qw = nn::ops::quantize_weights(w);
  const nn::QuantParams out_p = nn::choose_quant_params(0.0f, 6.0f, 8);
  nn::ops::KernelBackend backend(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        backend.depthwise_conv2d(qin, l, qw.data, qw.params, {}, out_p));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9);
  state.counters["simd_active"] =
      tier == nn::ops::KernelTier::Simd && nn::ops::simd::available() ? 1 : 0;
}
BENCHMARK(BM_DepthwiseInt8)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({128, 2});

// Integer-only residual add (fixed-point rescale, no per-element doubles).
void BM_AddInt8(benchmark::State& state) {
  const nn::Tensor a = random_tensor({32, 32, 32}, 12);
  const nn::Tensor b = random_tensor({32, 32, 32}, 13);
  const nn::QTensor qa = nn::quantize(a, nn::choose_quant_params(-3.0f, 3.0f, 8));
  const nn::QTensor qb = nn::quantize(b, nn::choose_quant_params(-2.0f, 4.0f, 8));
  const nn::QuantParams out_p = nn::choose_quant_params(-5.0f, 5.0f, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::ops::add_q(qa, qb, nn::Activation::None, out_p));
  }
  state.SetItemsProcessed(state.iterations() * a.elements());
}
BENCHMARK(BM_AddInt8);

// Fast float tier (im2col + tiled GEMM), vs the BM_Conv2dF32 reference.
void BM_Conv2dF32Fast(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const nn::Tensor in = random_tensor({32, 32, c}, 1);
  const nn::Layer l = conv_layer(c, 3, 1, 1);
  std::vector<float> w(static_cast<std::size_t>(c * 3 * 3 * c));
  nn::Rng rng(2);
  for (float& v : w) v = static_cast<float>(rng.normal(0.0, 0.1));
  nn::ops::KernelBackend backend(nn::ops::KernelTier::Fast);
  for (auto _ : state) {
    benchmark::DoNotOptimize(backend.conv2d_f32(in, l, w, {}));
  }
  state.SetItemsProcessed(state.iterations() * 32 * 32 * c * 9 * c);
}
BENCHMARK(BM_Conv2dF32Fast)->Arg(8)->Arg(16)->Arg(32);

void BM_BitPack(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  std::vector<std::int8_t> values(1 << 16);
  nn::Rng rng(5);
  const int lo = -(1 << (bits - 1));
  const int hi = (1 << (bits - 1)) - 1;
  for (auto& v : values) {
    v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::pack(values, bits));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BitPack)->Arg(2)->Arg(4);

// Sub-byte panel expansion (the loop feeding conv2d_packed's fused im2col
// path), through the Simd tier's vector body when the host has one.
void BM_BitUnpack(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  std::vector<std::int8_t> values(1 << 16);
  nn::Rng rng(5);
  const int lo = -(1 << (bits - 1));
  const int hi = (1 << (bits - 1)) - 1;
  for (auto& v : values) {
    v = static_cast<std::int8_t>(rng.uniform(lo, hi + 1));
  }
  const std::vector<std::uint8_t> packed = quant::pack(values, bits);
  std::vector<std::int8_t> out(values.size());
  const nn::ops::simd::SimdKernels* table = nn::ops::simd::kernels();
  for (auto _ : state) {
    quant::unpack_into(packed, 0, static_cast<std::int64_t>(out.size()), bits,
                       out.data(), table);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(values.size()));
  state.counters["simd_active"] = nn::ops::simd::available() ? 1 : 0;
}
BENCHMARK(BM_BitUnpack)->Arg(2)->Arg(4);

void BM_ActivationEntropy(benchmark::State& state) {
  const nn::Tensor t = random_tensor({64, 64, 16}, 6);
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::quantized_activation_entropy(t, 4, k));
  }
  state.SetItemsProcessed(state.iterations() * t.elements());
}
BENCHMARK(BM_ActivationEntropy)->Arg(16)->Arg(256);

void BM_VdqsSearch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<core::FeatureMapProfile> fms;
  nn::Rng rng(7);
  for (int i = 0; i < n; ++i) {
    core::FeatureMapProfile p;
    p.elements = 1000 + static_cast<std::int64_t>(rng.uniform(0, 4000));
    p.consumer_macs = 10000 + static_cast<std::int64_t>(rng.uniform(0, 1e6));
    p.entropy_float = 2.5;
    p.entropy_at_bits = {2.45, 2.2 + 0.2 * rng.uniform(), 1.0};
    fms.push_back(p);
  }
  core::VdqsConfig cfg;
  cfg.memory_budget = 6000;
  cfg.reference_bitops = 64'000'000;
  cfg.last_output_entropy = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::vdqs_search(fms, cfg));
  }
}
BENCHMARK(BM_VdqsSearch)->Arg(8)->Arg(32)->Arg(128);

// Repeated (serving-style) inference: the compiled arena path vs the
// heap-per-layer memo path on a small MobileNetV2. Arg 0 = legacy memo
// (run_all, one heap feature map per layer per run), arg 1 = compiled
// static-arena run() (zero per-layer allocation). Outputs are bit-identical;
// only the allocator traffic differs.
void BM_RepeatedRun(benchmark::State& state) {
  const bool arena_path = state.range(0) != 0;
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 64;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const nn::Tensor in = random_tensor(g.shape(0), 21);
  const auto ranges = quant::calibrate_ranges(g, std::vector<nn::Tensor>{in});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const nn::QuantExecutor qexec(g, qcfg);
  for (auto _ : state) {
    if (arena_path) {
      benchmark::DoNotOptimize(qexec.run(in));
    } else {
      benchmark::DoNotOptimize(qexec.run_all(in).back());
    }
  }
  state.SetItemsProcessed(state.iterations() * g.total_macs());
}
BENCHMARK(BM_RepeatedRun)->Arg(0)->Arg(1);

// Same comparison for the deployed patch runtime: legacy per-step region
// tensors (run_stage_assembled + tail) vs the compiled patch arena run().
void BM_RepeatedPatchRun(benchmark::State& state) {
  const bool arena_path = state.range(0) != 0;
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 64;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const nn::Tensor in = random_tensor(g.shape(0), 22);
  const auto ranges = quant::calibrate_ranges(g, std::vector<nn::Tensor>{in});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::PatchQuantExecutor pexec(g, plan, qcfg);
  const int split = pexec.plan().spec.split_layer;
  const auto effective = nn::effective_output_params(g, qcfg);
  // The pre-arena full inference: per-step region tensors for the stage,
  // then a heap-per-layer tail.
  const auto legacy_run = [&]() {
    std::vector<nn::QTensor> memo(static_cast<std::size_t>(g.size()));
    memo[static_cast<std::size_t>(split)] = pexec.run_stage_assembled(in);
    for (int id = split + 1; id < g.size(); ++id) {
      memo[static_cast<std::size_t>(id)] = nn::run_layer_q(
          g, id, memo, *pexec.shared_parameters(),
          effective[static_cast<std::size_t>(id)]);
    }
    return std::move(memo[static_cast<std::size_t>(g.output())]);
  };
  for (auto _ : state) {
    if (arena_path) {
      benchmark::DoNotOptimize(pexec.run(in));
    } else {
      benchmark::DoNotOptimize(legacy_run());
    }
  }
  state.SetItemsProcessed(state.iterations() * g.total_macs());
}
BENCHMARK(BM_RepeatedPatchRun)->Arg(0)->Arg(1);

// Thread-scaling sweeps for the parallel patch runtimes at 1/2/4/8
// workers (arg 0), over the same model and grid (3x4 = 12 branches):
//   BM_ParallelPatchRun  — the two-phase barrier runtime (branch barrier,
//                          then the whole tail on the caller);
//   BM_PipelinedPatchRun — the dependency-driven dataflow graph (branch
//                          tasks -> tail row bands -> join), which hides
//                          the tail behind the last branches.
// The 1-worker row is the sequential code path — the scaling baseline the
// acceptance criterion compares against; pipelined-vs-barrier at equal
// workers is the overlap win. On a single-core host the rows collapse to
// ~1x; the shape of the curves is the artifact CI tracks across machines.
struct PatchRunSetup {
  nn::Graph g;
  nn::Tensor in;
  std::unique_ptr<patch::PatchQuantExecutor> pexec;
  std::int64_t stage_macs = 0;
  std::size_t branches = 0;
};

PatchRunSetup patch_run_setup() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  PatchRunSetup s{models::make_mobilenet_v2(cfg), {}, nullptr};
  s.in = random_tensor(s.g.shape(0), 31);
  const auto ranges =
      quant::calibrate_ranges(s.g, std::vector<nn::Tensor>{s.in});
  const auto qcfg =
      quant::make_quant_config(s.g, ranges, nn::uniform_bits(s.g, 8));
  patch::PatchPlan plan =
      patch::build_patch_plan(s.g, patch::plan_mcunetv2(s.g, {3, 4}));
  s.stage_macs = plan.stage_macs_patched;
  s.branches = plan.branches.size();
  s.pexec = std::make_unique<patch::PatchQuantExecutor>(s.g, std::move(plan),
                                                        qcfg);
  return s;
}

void BM_ParallelPatchRun(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const PatchRunSetup s = patch_run_setup();
  nn::WorkerPool pool(workers);
  // Warm-up: builds worker contexts + prepacks per-worker panels.
  (void)s.pexec->run_parallel_barrier(s.in, &pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.pexec->run_parallel_barrier(s.in, &pool));
  }
  state.SetItemsProcessed(state.iterations() * s.stage_macs);
  state.counters["workers"] = workers;
  state.counters["branches"] = static_cast<double>(s.branches);
}
BENCHMARK(BM_ParallelPatchRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PipelinedPatchRun(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const PatchRunSetup s = patch_run_setup();
  nn::WorkerPool pool(workers);
  (void)s.pexec->run_parallel(s.in, &pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.pexec->run_parallel(s.in, &pool));
  }
  state.SetItemsProcessed(state.iterations() * s.stage_macs);
  state.counters["workers"] = workers;
  state.counters["branches"] = static_cast<double>(s.branches);
  state.counters["tail_bands"] = static_cast<double>(
      s.pexec->compiled().pipelined_tail().size());
}
BENCHMARK(BM_PipelinedPatchRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Throughput under concurrency for the serving front-end: `sessions`
// (arg 0) pre-compiled sessions serve a backlog of requests submitted from
// the bench thread; items/s is end-to-end requests drained per second.
void BM_SessionPoolThroughput(benchmark::State& state) {
  const int sessions = static_cast<int>(state.range(0));
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 64;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const nn::Tensor in = random_tensor(g.shape(0), 33);
  const auto ranges = quant::calibrate_ranges(g, std::vector<nn::Tensor>{in});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, qcfg);
  nn::SessionPool<nn::CompiledQuantModel> pool(sessions, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, qcfg, nn::ops::KernelTier::Fast, params);
  });
  constexpr int kBacklog = 16;
  // Warm-up batch: sessions size their arenas lazily on first run, and a
  // full backlog spreads requests across (almost surely) every session so
  // the timed iterations measure steady-state serving, not allocation.
  {
    std::vector<std::future<nn::QTensor>> warm;
    for (int i = 0; i < kBacklog; ++i) warm.push_back(pool.submit(in));
    for (auto& f : warm) (void)f.get();
  }
  for (auto _ : state) {
    std::vector<std::future<nn::QTensor>> futures;
    futures.reserve(kBacklog);
    for (int i = 0; i < kBacklog; ++i) futures.push_back(pool.submit(in));
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
  state.counters["sessions"] = sessions;
}
BENCHMARK(BM_SessionPoolThroughput)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Batched submission: the same backlog lands as `batch`-sized
// submit_batch calls (arg 0 = batch size; 1 = the per-item baseline).
// Larger batches amortise queue wakeups and keep a session looping on its
// bound arena — the ROADMAP "batched submission" win, measured.
void BM_SessionPoolBatchThroughput(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 64;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const nn::Tensor in = random_tensor(g.shape(0), 34);
  const auto ranges = quant::calibrate_ranges(g, std::vector<nn::Tensor>{in});
  const auto qcfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const auto params = nn::QuantizedParameters::build_shared(g, qcfg);
  nn::SessionPool<nn::CompiledQuantModel> pool(2, [&] {
    return std::make_unique<nn::CompiledQuantModel>(
        g, qcfg, nn::ops::KernelTier::Fast, params);
  });
  constexpr int kBacklog = 16;
  {
    std::vector<std::future<nn::QTensor>> warm;
    for (int i = 0; i < kBacklog; ++i) warm.push_back(pool.submit(in));
    for (auto& f : warm) (void)f.get();
  }
  for (auto _ : state) {
    std::vector<std::future<nn::QTensor>> futures;
    futures.reserve(kBacklog);
    for (int sent = 0; sent < kBacklog; sent += batch) {
      std::vector<nn::Tensor> inputs(
          static_cast<std::size_t>(std::min(batch, kBacklog - sent)), in);
      auto fs = pool.submit_batch(std::move(inputs));
      for (auto& f : fs) futures.push_back(std::move(f));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * kBacklog);
  state.counters["batch"] = batch;
}
BENCHMARK(BM_SessionPoolBatchThroughput)->Arg(1)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_PatchPlanBuild(benchmark::State& state) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 144;
  cfg.init_weights = false;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const patch::PatchSpec spec = patch::plan_mcunetv2(g, {3, 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(patch::build_patch_plan(g, spec));
  }
}
BENCHMARK(BM_PatchPlanBuild);

}  // namespace

int main(int argc, char** argv) {
  return qmcu::bench::run_benchmarks_json(argc, argv,
                                          "BENCH_micro_kernels.json");
}
