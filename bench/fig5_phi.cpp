// Figure 5 — Top-1/Top-5 accuracy under different φ values. φ sets the
// outlier threshold of VDPC (Eq. 1): small φ marks broad tails as outliers
// (conservative, everything stays 8-bit); past the paper's operating point
// of 0.96 genuinely informative extreme values stop being protected and
// accuracy collapses.
#include "bench_common.h"

int main() {
  using namespace qmcu;
  bench::print_title("Figure 5", "accuracy vs phi (VDPC outlier threshold)");
  std::printf("paper: stable for phi <= 0.96, rapid decrease beyond; 0.96 "
              "chosen\n\n");

  const mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  const mcu::CostModel cm(dev);
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const auto ds =
      bench::dataset_for(data::DatasetKind::ImageNetLike, cfg.resolution);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const std::vector<nn::Tensor> eval = ds.batch(8, 3);
  const core::AccuracyBase base = core::base_accuracy("mobilenetv2");

  // The searched plan is phi-independent; classification is applied at
  // evaluation time, as on the deployed MCU.
  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 3;
  const core::QuantMcuPlan plan =
      core::build_quantmcu_plan(g, dev, calib, qcfg);

  std::printf("%8s %10s %10s %16s\n", "phi", "Top-1", "Top-5",
              "outlier patches");
  for (double phi : {0.90, 0.92, 0.94, 0.96, 0.98, 0.99, 0.999, 1.0}) {
    core::QuantMcuConfig c = qcfg;
    c.vdpc.phi = phi;
    const core::QuantMcuEvaluation ev =
        core::evaluate_quantmcu(g, plan, cm, eval, c);
    std::printf("%8.3f %9.1f%% %9.1f%% %15.0f%%\n", phi,
                base.imagenet_top1 - ev.top1_penalty_pp,
                base.imagenet_top5 - ev.top5_penalty_pp,
                100.0 * ev.outlier_patch_fraction);
  }
  return 0;
}
