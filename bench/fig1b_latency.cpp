// Figure 1b — inference latency of layer-based vs patch-based execution on
// five networks (Arduino Nano 33 BLE Sense scale). The paper reports an
// 8–17% latency increase for patch-based inference; the redundancy of the
// per-patch halos is the whole motivation for QuantMCU.
#include "bench_common.h"

int main() {
  using namespace qmcu;
  bench::print_title("Figure 1b",
                     "layer-based vs patch-based latency (int8, Nano 33)");

  const mcu::CostModel cm(mcu::arduino_nano_33_ble_sense());
  // Fig. 1b's five models; the MobileNetV2 bars match Table I's Arduino /
  // ImageNet column (617 ms layer, 741 ms patch in the paper).
  const std::vector<std::string> nets{"mobilenetv2", "mnasnet", "fbnet_a",
                                      "ofa_cpu", "mcunet"};

  bench::JsonReport report("fig1b_latency");
  std::printf("%-14s %12s %12s %10s\n", "network", "layer (ms)", "patch (ms)",
              "overhead");
  for (const std::string& name : nets) {
    models::ModelConfig cfg = bench::nano_imagenet_scale();
    cfg.init_weights = false;  // cost-model study, no execution
    const nn::Graph g = models::make_model(name, cfg);

    const std::vector<int> bits8 = nn::uniform_bits(g, 8);
    const double layer_ms = cm.graph_latency_ms(g, bits8);

    const patch::PatchPlan plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 8}));
    const patch::PatchCost pc = patch::evaluate_patch_cost(
        g, plan, patch::uniform_branch_bits(plan, 8), bits8, cm);

    std::printf("%-14s %12.0f %12.0f %+9.1f%%\n", name.c_str(), layer_ms,
                pc.latency_ms, 100.0 * (pc.latency_ms / layer_ms - 1.0));
    report.add("fig1b/" + name + "/layer_ms", layer_ms, "ms");
    report.add("fig1b/" + name + "/patch_ms", pc.latency_ms, "ms");
    report.add("fig1b/" + name + "/overhead_pct",
               100.0 * (pc.latency_ms / layer_ms - 1.0), "%");
  }
  std::printf("\npaper: patch-based inference adds 8%%-17%% latency across "
              "these networks\n");
  report.write();
  return 0;
}
