// streaming — per-frame latency of the temporal-reuse streaming runtime
// (nn/streaming/streaming_session.h) versus full recompute, across frame
// change rates.
//
// Workload: the mbv2 zoo model at MCU scale, int8, 4x4 patch grid, served
// with an intra-request WorkerPool — the configuration a streaming camera
// deployment would run. Two kinds of sequences:
//
//  * change-rate legs — 0/10/30/100 % of the frame area re-randomised on
//    EVERY frame (a moving square of that area; 100 % redraws the whole
//    frame). These chart how the speedup decays with per-frame change and
//    are the worst case: a contiguous 30 %-area square overlaps most
//    branch crops of a 4x4 grid, so full recompute of the dirty branches
//    bounds the win there near 1x by construction.
//  * camera leg (the acceptance headline) — a synthetic moving-object
//    sequence: static textured background, a rigid object covering ~30 %
//    of the frame that moves on every other frame (object motion at half
//    the camera rate) and holds still between moves. Motion frames change
//    ~30 % of the pixels; hold frames change none — the mix real streams
//    are made of, and the case temporal reuse exists for. The per-frame
//    MEAN latency of the whole sequence vs full recompute is the gated
//    speedup.
//
// Every streamed frame is bit-exactness-checked against full recompute —
// a mismatch aborts the bench: the speedup only counts if the output is
// the same bytes. The measured mean changed-pixel fraction of each
// sequence is reported alongside so the legs stay honest.
//
//   streaming/camera/speedup_x             guarded; --require-speedup X
//                                          hard gate (acceptance: >= 2x on
//                                          the moving-object sequence)
//   streaming/change_{10,30}/speedup_x     guarded must-not-drop ratios
//   streaming/change_{0,100}/relative_x    informational: 0 % measures the
//                                          timer floor (hundreds of x, all
//                                          noise) and 100 % hovers at
//                                          parity — neither is guardable
//   streaming/calibration/RefSingleRun     sequential full run (ms) — the
//                                          machine-speed anchor when this
//                                          artifact is guarded alone
//
// Writes BENCH_streaming.json (JsonReport format).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "nn/rng.h"
#include "nn/runtime/worker_pool.h"
#include "nn/streaming/streaming_session.h"
#include "patch/compiled_patch_model.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// A frame sequence where each frame re-randomises a moving square covering
// `change_fraction` of the pixels (0 repeats the frame, 1 redraws it).
std::vector<nn::Tensor> make_stream(nn::TensorShape s, int frames,
                                    double change_fraction,
                                    std::uint64_t seed) {
  std::vector<nn::Tensor> stream;
  stream.push_back(random_input(s, seed));
  if (change_fraction >= 1.0) {
    for (int f = 1; f < frames; ++f) {
      stream.push_back(random_input(s, seed + static_cast<std::uint64_t>(f)));
    }
    return stream;
  }
  nn::Rng rng(seed + 100);
  const int side = static_cast<int>(
      std::sqrt(change_fraction * s.h * s.w) + 0.5);
  for (int f = 1; f < frames; ++f) {
    nn::Tensor next = stream.back();
    if (side > 0) {
      const int y0 = static_cast<int>(rng.uniform(0, s.h - side + 1));
      const int x0 = static_cast<int>(rng.uniform(0, s.w - side + 1));
      for (int y = y0; y < y0 + side; ++y) {
        for (int x = x0; x < x0 + side; ++x) {
          for (int c = 0; c < s.c; ++c) {
            next.at(y, x, c) = static_cast<float>(rng.normal(0.0, 1.0));
          }
        }
      }
    }
    stream.push_back(std::move(next));
  }
  return stream;
}

// A synthetic camera: static background, a rigid textured object covering
// ~`area_fraction` of the frame. The object moves by a few pixels on every
// other frame (and its texture shifts with it); between moves the frame
// repeats exactly — the temporal structure real feeds have.
std::vector<nn::Tensor> make_camera_stream(nn::TensorShape s, int frames,
                                           double area_fraction,
                                           std::uint64_t seed) {
  const nn::Tensor background = random_input(s, seed);
  const int side =
      static_cast<int>(std::sqrt(area_fraction * s.h * s.w) + 0.5);
  nn::Rng rng(seed + 200);
  int y0 = (s.h - side) / 2;
  int x0 = (s.w - side) / 2;
  std::vector<nn::Tensor> stream;
  for (int f = 0; f < frames; ++f) {
    if (f > 0 && f % 2 == 0) {
      // Hold frame: the object did not move since the camera's last shot.
      stream.push_back(stream.back());
      continue;
    }
    if (f > 0) {
      const int step = 4;
      y0 = std::clamp(y0 + static_cast<int>(rng.uniform(-step, step + 1)),
                      0, s.h - side);
      x0 = std::clamp(x0 + static_cast<int>(rng.uniform(-step, step + 1)),
                      0, s.w - side);
    }
    nn::Tensor frame = background;
    for (int y = y0; y < y0 + side; ++y) {
      for (int x = x0; x < x0 + side; ++x) {
        for (int c = 0; c < s.c; ++c) {
          frame.at(y, x, c) = static_cast<float>(rng.normal(0.0, 1.0));
        }
      }
    }
    stream.push_back(std::move(frame));
  }
  return stream;
}

// Mean fraction of pixels (any channel) differing between consecutive
// frames — the sequence's actual change rate, reported for honesty.
double mean_change_fraction(const std::vector<nn::Tensor>& stream) {
  if (stream.size() < 2) return 0.0;
  double total = 0.0;
  for (std::size_t f = 1; f < stream.size(); ++f) {
    const nn::TensorShape s = stream[f].shape();
    std::int64_t changed = 0;
    for (int y = 0; y < s.h; ++y) {
      for (int x = 0; x < s.w; ++x) {
        for (int c = 0; c < s.c; ++c) {
          if (stream[f].at(y, x, c) != stream[f - 1].at(y, x, c)) {
            ++changed;
            break;
          }
        }
      }
    }
    total += static_cast<double>(changed) /
             (static_cast<double>(s.h) * static_cast<double>(s.w));
  }
  return total / static_cast<double>(stream.size() - 1);
}

bool q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  return a.shape() == b.shape() && a.params() == b.params() &&
         std::memcmp(a.data().data(), b.data().data(), a.data().size()) == 0;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

int run(int argc, char** argv) {
  double require_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-speedup") == 0 && i + 1 < argc) {
      require_speedup = std::atof(argv[++i]);
    }
  }

  bench::JsonReport report("streaming");

  models::ModelConfig mc;
  mc.width_multiplier = 0.25f;
  mc.resolution = 96;
  mc.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(mc);
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 1),
                                      random_input(g.shape(0), 2)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {4, 4}));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int workers = std::max(1, std::min(4, hw));
  nn::WorkerPool pool(workers);
  nn::WorkerPool* p = workers == 1 ? nullptr : &pool;

  std::printf("streaming bench: mbv2 int8, %dx%d grid, %d workers\n",
              plan.spec.grid_rows, plan.spec.grid_cols, workers);

  // Machine-speed anchor: the sequential full run, median of a few reps.
  {
    const nn::Tensor in = random_input(g.shape(0), 3);
    (void)model.run(in);  // warm panels and arena
    std::vector<double> times;
    for (int r = 0; r < 5; ++r) {
      const auto t0 = Clock::now();
      (void)model.run(in);
      times.push_back(ms_since(t0));
    }
    report.add("streaming/calibration/RefSingleRun", median(times), "ms");
  }

  constexpr int kFrames = 24;
  // Times one sequence through both worlds (prime frame untimed, every
  // frame bit-checked) and emits the leg's metrics. `use_mean` averages the
  // per-frame latency over the sequence (the camera leg's mix of hold and
  // motion frames IS the workload); the fixed-rate legs report the median
  // frame. Returns the speedup, or a negative value on a bit mismatch.
  const auto run_leg = [&](const char* label,
                           const std::vector<nn::Tensor>& stream,
                           bool use_mean, bool guarded) {
    nn::streaming::StreamingSession<patch::CompiledPatchQuantModel> session;
    (void)session.next(model, stream[0], p);
    std::vector<double> stream_ms;
    std::vector<double> full_ms;
    for (std::size_t f = 1; f < stream.size(); ++f) {
      auto t0 = Clock::now();
      const nn::QTensor got = session.next(model, stream[f], p);
      stream_ms.push_back(ms_since(t0));

      t0 = Clock::now();
      const nn::QTensor expect = model.run(stream[f], p);
      full_ms.push_back(ms_since(t0));

      if (!q_identical(got, expect)) {
        std::fprintf(stderr,
                     "FATAL: streaming output mismatch (%s, frame %zu)\n",
                     label, f);
        return -1.0;
      }
    }

    const auto mean = [](const std::vector<double>& v) {
      double sum = 0.0;
      for (const double x : v) sum += x;
      return sum / static_cast<double>(v.size());
    };
    const double s_ms = use_mean ? mean(stream_ms) : median(stream_ms);
    const double f_ms = use_mean ? mean(full_ms) : median(full_ms);
    const double speedup = s_ms > 0.0 ? f_ms / s_ms : 0.0;
    const nn::streaming::StreamingStats& st = session.stats();
    std::printf(
        "  %-10s full %7.3f ms  streaming %7.3f ms  %5.2fx  "
        "(change %4.1f%%, branch skip %4.1f%%, band skip %4.1f%%)\n",
        label, f_ms, s_ms, speedup, 100.0 * mean_change_fraction(stream),
        100.0 * st.branch_skip_ratio(), 100.0 * st.band_skip_ratio());

    const std::string prefix = std::string("streaming/") + label;
    if (guarded) {
      report.add(prefix + "/speedup_x", speedup, "x");
    } else {
      // Full-change streams hover around parity; keep it visible but
      // outside the guarded namespace.
      report.add(prefix + "/relative_x", speedup, "ratio");
    }
    report.add(prefix + "/frame_ms", s_ms, "info_ms");
    report.add(prefix + "/branch_skip_frac", st.branch_skip_ratio(), "frac");
    report.add(prefix + "/band_skip_frac", st.band_skip_ratio(), "frac");
    return speedup;
  };

  // Both ends of the change axis are degenerate as guard material — 0 %
  // measures the timer floor (hundreds of x, all noise) and 100 % measures
  // parity — so only the middle legs carry guarded speedups.
  for (const auto& [label, fraction] :
       std::vector<std::pair<const char*, double>>{
           {"change_0", 0.0},
           {"change_10", 0.10},
           {"change_30", 0.30},
           {"change_100", 1.0}}) {
    if (run_leg(label, make_stream(g.shape(0), kFrames, fraction, 7),
                /*use_mean=*/false,
                /*guarded=*/fraction > 0.0 && fraction < 1.0) < 0.0) {
      return 1;
    }
  }

  // The acceptance headline: mean per-frame latency over a moving-object
  // sequence (~30 % of the frame in motion at half the camera rate).
  const double gated_speedup =
      run_leg("camera", make_camera_stream(g.shape(0), 2 * kFrames, 0.30, 7),
              /*use_mean=*/true, /*guarded=*/true);
  if (gated_speedup < 0.0) return 1;

  report.write();

  if (require_speedup > 0.0) {
    if (gated_speedup < require_speedup) {
      std::fprintf(stderr,
                   "FAIL: streaming speedup %.2fx on the moving-object "
                   "sequence below required %.2fx\n",
                   gated_speedup, require_speedup);
      return 1;
    }
    std::printf("PASS: streaming speedup %.2fx >= required %.2fx\n",
                gated_speedup, require_speedup);
  }
  return 0;
}

}  // namespace
}  // namespace qmcu

int main(int argc, char** argv) { return qmcu::run(argc, argv); }
