// Design-choice ablations (DESIGN.md §6) — not a paper artifact, but the
// studies that justify this reproduction's own decisions:
//   A. tail quantization on/off (decision behind matching Table I's 2.2x);
//   B. histogram bin count k of Eq. 3;
//   C. patch grid granularity;
//   D. Eq. 7 memory pressure (exercises Algorithm 1's repair loop).
#include "bench_common.h"

namespace {

using namespace qmcu;

struct Context {
  nn::Graph g;
  mcu::Device dev = mcu::arduino_nano_33_ble_sense();
  mcu::CostModel cm{dev};
  std::vector<nn::Tensor> calib;
  std::vector<nn::Tensor> eval;

  explicit Context(nn::Graph graph) : g(std::move(graph)) {}
};

Context make_context() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.35f;
  cfg.resolution = 96;
  cfg.num_classes = 100;
  Context ctx(models::make_mobilenet_v2(cfg));
  const auto ds =
      bench::dataset_for(data::DatasetKind::ImageNetLike, cfg.resolution);
  ctx.calib = ds.batch(0, 2);
  ctx.eval = ds.batch(8, 2);
  return ctx;
}

void report(const Context& ctx, const char* label,
            const core::QuantMcuConfig& qcfg) {
  const core::QuantMcuPlan plan =
      core::build_quantmcu_plan(ctx.g, ctx.dev, ctx.calib, qcfg);
  const core::QuantMcuEvaluation ev =
      core::evaluate_quantmcu(ctx.g, plan, ctx.cm, ctx.eval, qcfg);
  int repair = 0;
  bool fallback = false;
  bool feasible = true;
  for (const core::VdqsResult& r : plan.searches) {
    repair += r.repair_rounds;
    fallback = fallback || r.used_fallback;
    feasible = feasible && r.feasible;
  }
  std::printf(
      "  %-26s bitops=%7.0fM peak=%5.0fKB lat=%5.0fms pen=%4.2fpp "
      "repair=%d%s%s\n",
      label, ev.mean_bitops / 1e6, ev.mean_peak_bytes / 1024,
      ev.mean_latency_ms, ev.top1_penalty_pp, repair,
      fallback ? " fallback" : "", feasible ? "" : " INFEASIBLE");
}

}  // namespace

int main() {
  using namespace qmcu;
  bench::print_title("Ablations", "design-choice studies (DESIGN.md §6)");
  const Context ctx = make_context();

  std::printf("\nA. tail quantization (drives the Table I BitOPs gap)\n");
  {
    core::QuantMcuConfig on;
    on.patch.grid = 3;
    core::QuantMcuConfig off = on;
    off.quantize_tail = false;
    report(ctx, "tail VDQS on (default)", on);
    report(ctx, "tail VDQS off (stage only)", off);
  }

  std::printf("\nB. histogram bins k (Eq. 3)\n");
  for (int k : {8, 16, 64, 256}) {
    core::QuantMcuConfig c;
    c.patch.grid = 3;
    c.histogram_bins = k;
    char label[32];
    std::snprintf(label, sizeof label, "k = %d%s", k,
                  k == 16 ? " (default)" : "");
    report(ctx, label, c);
  }

  std::printf("\nC. patch grid\n");
  for (int grid : {2, 3, 4}) {
    core::QuantMcuConfig c;
    c.patch.grid = grid;
    char label[32];
    std::snprintf(label, sizeof label, "%dx%d patches%s", grid, grid,
                  grid == 3 ? " (default)" : "");
    report(ctx, label, c);
  }

  std::printf("\nD. Eq. 7 memory pressure (Algorithm 1 repair)\n");
  for (double frac : {0.5, 0.02, 0.005}) {
    core::QuantMcuConfig c;
    c.patch.grid = 3;
    c.memory_fraction = frac;
    char label[40];
    std::snprintf(label, sizeof label, "M = %.1f%% of SRAM%s", 100.0 * frac,
                  frac == 0.5 ? " (default)" : "");
    report(ctx, label, c);
  }
  return 0;
}
